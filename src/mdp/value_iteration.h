// Value Iteration for finite MDPs (cost-minimizing).
//
// Supports Jacobi sweeps (classic VI) and in-place Gauss-Seidel sweeps,
// which converge in fewer iterations on layered problems like the paper's
// 2-D example where the intruder's x coordinate only decreases.
//
// By default the model is compiled once into flat CSR arrays (CompiledMdp)
// and all sweeps run on the compiled kernel; Jacobi sweeps additionally
// parallelize across states when a ThreadPool is supplied (Gauss-Seidel is
// inherently sequential and stays serial, but still uses the kernel).
// Both paths produce bit-identical results — the virtual-dispatch path is
// kept as a cross-check reference and for one-shot solves of models too
// large to flatten.
#pragma once

#include <cstddef>

#include "mdp/compiled_mdp.h"
#include "mdp/mdp.h"
#include "util/thread_pool.h"

namespace cav::mdp {

struct ValueIterationConfig {
  double discount = 1.0;          ///< 1.0 is safe for episodic/DAG models
  double tolerance = 1e-9;        ///< max-norm residual for convergence
  std::size_t max_iterations = 10000;
  bool gauss_seidel = false;      ///< update values in place during a sweep
  bool use_compiled = true;       ///< false = legacy virtual-dispatch sweeps
  /// Parallel Jacobi sweeps when non-null.  Compiled path only: the legacy
  /// virtual path (use_compiled = false) is a serial reference and ignores
  /// the pool.  Gauss-Seidel also stays serial by construction.
  ThreadPool* pool = nullptr;
};

struct ValueIterationResult {
  Values values;        ///< optimal expected cost per state
  QTable q;             ///< optimal Q table
  Policy policy;        ///< greedy policy
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final max-norm change
  bool converged = false;
};

/// Solve to convergence.  Throws ContractViolation on an empty model.
ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config = {});

/// Solve an already-compiled model (lets callers amortize compilation
/// across repeated solves, e.g. model-revision sweeps).  `use_compiled`
/// is ignored — this entry point is always compiled.
ValueIterationResult solve_value_iteration(const CompiledMdp& mdp,
                                           const ValueIterationConfig& config = {});

/// Finite-horizon backward induction: returns values for each
/// stage t = 0..horizon, where values[t] is the optimal expected cost with
/// t decision steps remaining.  values[0][s] = terminal_cost for terminal
/// states and 0 otherwise.  Parallelizes each stage over `pool` when given
/// (compiled path only); use_compiled = false runs the legacy serial
/// virtual-dispatch reference, as in the other solvers.
std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount = 1.0, ThreadPool* pool = nullptr,
                                         bool use_compiled = true);

/// Finite-horizon backward induction on a pre-compiled model.
std::vector<Values> solve_finite_horizon(const CompiledMdp& mdp, std::size_t horizon,
                                         double discount = 1.0, ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Prioritized sweeping (residual-ordered asynchronous value iteration).
//
// Full Jacobi sweeps touch every state every iteration even when most of
// the state space is already converged; on sparse-goal models (cost mass
// concentrated in a small region, the typical shape of collision-punishment
// MDPs) almost all of that work is wasted.  solve_prioritized instead keeps
// a max-priority queue of per-state upper bounds on the Bellman residual:
// it pops the worst state, backs it up, and propagates `discount * |dV|`
// to the predecessors exposed by the compiled transpose
// (CompiledMdp::pred_offsets / pred_state).
//
// The bounds ACCUMULATE (priority[p] += discount * |dV|) rather than
// max-combine, so "queue empty" soundly certifies that every state's true
// residual is at most `tolerance`.  A final full Jacobi sweep then fills
// the Q table (states the queue never reached would otherwise keep stale
// rows), measures the exact residual, and — in the rare case floating-point
// bound arithmetic left it above tolerance — reseeds the queue and
// continues.  The fixed point matches plain value iteration within the
// shared tolerance.

struct PrioritizedSweepConfig {
  double discount = 1.0;           ///< in (0, 1]; 1.0 is safe for episodic models
  double tolerance = 1e-9;         ///< max-norm Bellman residual for convergence
  /// Soft budget on single-state backups, checked before each queue pop;
  /// 0 = 10000 * num_states.  The initial seeding pass and the final
  /// Q-filling sweep always run in full, so the total can overshoot by up
  /// to 2 * num_states.  A budget-cut result still reports the residual
  /// that final sweep measured, and a policy greedy w.r.t. its Q table
  /// (computed from the pre-sweep values — the returned values are one
  /// Bellman application ahead of it, a gap of at most `residual`).
  std::size_t max_state_updates = 0;
};

struct PrioritizedSweepResult {
  Values values;
  QTable q;
  Policy policy;
  /// Single-state Bellman backups performed: the seeding pass + queue pops
  /// + verification sweeps.  The Jacobi equivalent is
  /// iterations * (number of non-terminal states); the gap is the win.
  std::size_t state_updates = 0;
  std::size_t verification_sweeps = 0;  ///< full sweeps run after queue drains (>= 1)
  double residual = 0.0;                ///< exact max-norm residual of the last sweep
  bool converged = false;
};

/// Solve an already-compiled model by prioritized sweeping.  Reaches the
/// same fixed point as solve_value_iteration within `tolerance`; on
/// sparse-goal models it does so in far fewer state updates.
PrioritizedSweepResult solve_prioritized(const CompiledMdp& mdp,
                                         const PrioritizedSweepConfig& config = {});

// ---------------------------------------------------------------------------
// float32 value layers.
//
// For bandwidth-bound models the value vector is the hot random-access
// array; storing it in float halves the traffic (the ACAS tau layers
// already store float for the same reason).  Probabilities, costs, and all
// accumulation stay double — only the value reads/writes narrow, so the
// result tracks the double path to within float rounding: the per-sweep
// write error is one float ulp of the value scale (~6e-8 relative), and the
// converged values agree with the double path to ~1e-5 relative in
// practice (asserted at 1e-4 * ||V||_inf in the tests).
//
// Because residuals below the float ulp of the value scale are pure
// quantization noise, convergence uses max(config.tolerance, float_floor)
// where float_floor = 8 * FLT_EPSILON * ||V||_inf; the applied floor is
// reported in the result.

struct ValueIterationF32Result {
  std::vector<float> values;  ///< converged float value layer
  QTable q;                   ///< double Q, recomputed from the float values
  Policy policy;
  std::size_t iterations = 0;
  double residual = 0.0;      ///< final max-norm change (double arithmetic)
  double float_floor = 0.0;   ///< ulp-scaled convergence floor actually applied
  bool converged = false;
};

/// Jacobi value iteration with float32 value layers (serial, or parallel
/// over config.pool).  Gauss-Seidel is not supported on this path
/// (config.gauss_seidel must be false).
ValueIterationF32Result solve_value_iteration_f32(const CompiledMdp& mdp,
                                                  const ValueIterationConfig& config = {});

}  // namespace cav::mdp
