// Value Iteration for finite MDPs (cost-minimizing).
//
// Supports Jacobi sweeps (classic VI) and in-place Gauss-Seidel sweeps,
// which converge in fewer iterations on layered problems like the paper's
// 2-D example where the intruder's x coordinate only decreases.
#pragma once

#include <cstddef>

#include "mdp/mdp.h"

namespace cav::mdp {

struct ValueIterationConfig {
  double discount = 1.0;          ///< 1.0 is safe for episodic/DAG models
  double tolerance = 1e-9;        ///< max-norm residual for convergence
  std::size_t max_iterations = 10000;
  bool gauss_seidel = false;      ///< update values in place during a sweep
};

struct ValueIterationResult {
  Values values;        ///< optimal expected cost per state
  QTable q;             ///< optimal Q table
  Policy policy;        ///< greedy policy
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final max-norm change
  bool converged = false;
};

/// Solve to convergence.  Throws ContractViolation on an empty model.
ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config = {});

/// Finite-horizon backward induction: returns values for each
/// stage t = 0..horizon, where values[t] is the optimal expected cost with
/// t decision steps remaining.  values[0][s] = terminal_cost for terminal
/// states and 0 otherwise.
std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount = 1.0);

}  // namespace cav::mdp
