// Value Iteration for finite MDPs (cost-minimizing).
//
// Supports Jacobi sweeps (classic VI) and in-place Gauss-Seidel sweeps,
// which converge in fewer iterations on layered problems like the paper's
// 2-D example where the intruder's x coordinate only decreases.
//
// By default the model is compiled once into flat CSR arrays (CompiledMdp)
// and all sweeps run on the compiled kernel; Jacobi sweeps additionally
// parallelize across states when a ThreadPool is supplied (Gauss-Seidel is
// inherently sequential and stays serial, but still uses the kernel).
// Both paths produce bit-identical results — the virtual-dispatch path is
// kept as a cross-check reference and for one-shot solves of models too
// large to flatten.
#pragma once

#include <cstddef>

#include "mdp/compiled_mdp.h"
#include "mdp/mdp.h"
#include "util/thread_pool.h"

namespace cav::mdp {

struct ValueIterationConfig {
  double discount = 1.0;          ///< 1.0 is safe for episodic/DAG models
  double tolerance = 1e-9;        ///< max-norm residual for convergence
  std::size_t max_iterations = 10000;
  bool gauss_seidel = false;      ///< update values in place during a sweep
  bool use_compiled = true;       ///< false = legacy virtual-dispatch sweeps
  /// Parallel Jacobi sweeps when non-null.  Compiled path only: the legacy
  /// virtual path (use_compiled = false) is a serial reference and ignores
  /// the pool.  Gauss-Seidel also stays serial by construction.
  ThreadPool* pool = nullptr;
};

struct ValueIterationResult {
  Values values;        ///< optimal expected cost per state
  QTable q;             ///< optimal Q table
  Policy policy;        ///< greedy policy
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final max-norm change
  bool converged = false;
};

/// Solve to convergence.  Throws ContractViolation on an empty model.
ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config = {});

/// Solve an already-compiled model (lets callers amortize compilation
/// across repeated solves, e.g. model-revision sweeps).  `use_compiled`
/// is ignored — this entry point is always compiled.
ValueIterationResult solve_value_iteration(const CompiledMdp& mdp,
                                           const ValueIterationConfig& config = {});

/// Finite-horizon backward induction: returns values for each
/// stage t = 0..horizon, where values[t] is the optimal expected cost with
/// t decision steps remaining.  values[0][s] = terminal_cost for terminal
/// states and 0 otherwise.  Parallelizes each stage over `pool` when given
/// (compiled path only); use_compiled = false runs the legacy serial
/// virtual-dispatch reference, as in the other solvers.
std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount = 1.0, ThreadPool* pool = nullptr,
                                         bool use_compiled = true);

/// Finite-horizon backward induction on a pre-compiled model.
std::vector<Values> solve_finite_horizon(const CompiledMdp& mdp, std::size_t horizon,
                                         double discount = 1.0, ThreadPool* pool = nullptr);

}  // namespace cav::mdp
