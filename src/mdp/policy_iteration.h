// Policy Iteration (Howard's algorithm) — the paper names it alongside
// Value Iteration as the DP techniques that "automatically figure out the
// best strategy" (§III).  Policy evaluation is iterative (successive
// approximation) rather than a linear solve, which is appropriate for the
// sparse episodic models in this library.
//
// Like value iteration, the solver compiles the model once into flat CSR
// arrays (CompiledMdp) and sweeps those.  Policy evaluation updates in
// place (Gauss-Seidel style) and stays serial; the improvement step only
// reads the value vector and parallelizes across states when a ThreadPool
// is supplied.
#pragma once

#include <cstddef>

#include "mdp/compiled_mdp.h"
#include "mdp/mdp.h"
#include "util/thread_pool.h"

namespace cav::mdp {

struct PolicyIterationConfig {
  double discount = 1.0;
  double eval_tolerance = 1e-9;       ///< policy-evaluation residual
  std::size_t max_eval_sweeps = 10000;
  std::size_t max_policy_updates = 1000;
  bool use_compiled = true;           ///< false = legacy virtual-dispatch sweeps
  /// Parallel improvement step when non-null.  Compiled path only: the
  /// legacy virtual path (use_compiled = false) is a serial reference and
  /// ignores the pool.
  ThreadPool* pool = nullptr;
};

struct PolicyIterationResult {
  Values values;
  Policy policy;
  std::size_t policy_updates = 0;  ///< improvement rounds performed
  bool converged = false;          ///< true when the policy became stable
};

PolicyIterationResult solve_policy_iteration(const FiniteMdp& mdp,
                                             const PolicyIterationConfig& config = {});

/// Solve an already-compiled model (`use_compiled` is ignored).
PolicyIterationResult solve_policy_iteration(const CompiledMdp& mdp,
                                             const PolicyIterationConfig& config = {});

}  // namespace cav::mdp
