// Policy Iteration (Howard's algorithm) — the paper names it alongside
// Value Iteration as the DP techniques that "automatically figure out the
// best strategy" (§III).  Policy evaluation is iterative (successive
// approximation) rather than a linear solve, which is appropriate for the
// sparse episodic models in this library.
#pragma once

#include <cstddef>

#include "mdp/mdp.h"

namespace cav::mdp {

struct PolicyIterationConfig {
  double discount = 1.0;
  double eval_tolerance = 1e-9;       ///< policy-evaluation residual
  std::size_t max_eval_sweeps = 10000;
  std::size_t max_policy_updates = 1000;
};

struct PolicyIterationResult {
  Values values;
  Policy policy;
  std::size_t policy_updates = 0;  ///< improvement rounds performed
  bool converged = false;          ///< true when the policy became stable
};

PolicyIterationResult solve_policy_iteration(const FiniteMdp& mdp,
                                             const PolicyIterationConfig& config = {});

}  // namespace cav::mdp
