#include "mdp/compiled_mdp.h"

#include <cmath>

#include "util/expect.h"

namespace cav::mdp {

CompiledMdp::CompiledMdp(const FiniteMdp& mdp)
    : num_states_(mdp.num_states()), num_actions_(mdp.num_actions()) {
  expect(num_states_ > 0, "MDP has at least one state");
  expect(num_actions_ > 0, "MDP has at least one action");

  const std::size_t rows = num_states_ * num_actions_;
  row_offsets_.assign(rows + 1, 0);
  cost_.assign(rows, 0.0);
  terminal_.assign(num_states_, 0);
  terminal_cost_.assign(num_states_, 0.0);

  std::vector<Transition> scratch;
  scratch.reserve(64);

  // Two-pass expansion would call transitions() twice per row; instead grow
  // the entry arrays in one pass (the expansion happens exactly once).
  next_state_.reserve(rows);  // lower bound; vectors grow geometrically
  prob_.reserve(rows);

  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      terminal_[s] = 1;
      terminal_cost_[s] = mdp.terminal_cost(state);
      // Terminal rows stay empty; offsets just repeat.
      for (std::size_t a = 0; a < num_actions_; ++a) {
        row_offsets_[row(state, static_cast<Action>(a)) + 1] = next_state_.size();
      }
      continue;
    }
    for (std::size_t a = 0; a < num_actions_; ++a) {
      const auto action = static_cast<Action>(a);
      cost_[row(state, action)] = mdp.cost(state, action);
      scratch.clear();
      mdp.transitions(state, action, scratch);
      double sum = 0.0;
      for (const Transition& t : scratch) {
        ensure(t.next < num_states_, "transition target within the state space");
        ensure(t.prob >= 0.0, "transition probability non-negative");
        next_state_.push_back(t.next);
        prob_.push_back(t.prob);
        sum += t.prob;
      }
      ensure(std::abs(sum - 1.0) < 1e-6, "transition probabilities sum to 1");
      row_offsets_[row(state, action) + 1] = next_state_.size();
    }
  }
}

void CompiledMdp::build_reverse_graph() const {
  // State-granularity transpose with per-source dedup: for each successor
  // state, the set of source states reaching it under any action.  Two
  // counting-sort passes over the entry array; a stamp vector collapses the
  // (source, successor) duplicates that multiple actions / noise branches
  // of one source produce, which keeps the prioritized queue from pushing
  // the same predecessor several times per update.
  constexpr State kNoStamp = std::numeric_limits<State>::max();
  std::vector<State> stamp(num_states_, kNoStamp);

  pred_offsets_.assign(num_states_ + 1, 0);
  for (std::size_t s = 0; s < num_states_; ++s) {
    const std::size_t begin = row_offsets_[s * num_actions_];
    const std::size_t end = row_offsets_[(s + 1) * num_actions_];
    for (std::size_t k = begin; k < end; ++k) {
      const State succ = next_state_[k];
      if (stamp[succ] == static_cast<State>(s)) continue;
      stamp[succ] = static_cast<State>(s);
      ++pred_offsets_[succ + 1];
    }
  }
  for (std::size_t s = 0; s < num_states_; ++s) pred_offsets_[s + 1] += pred_offsets_[s];

  pred_state_.resize(pred_offsets_[num_states_]);
  std::vector<std::size_t> fill(pred_offsets_.begin(), pred_offsets_.end() - 1);
  stamp.assign(num_states_, kNoStamp);
  for (std::size_t s = 0; s < num_states_; ++s) {
    const std::size_t begin = row_offsets_[s * num_actions_];
    const std::size_t end = row_offsets_[(s + 1) * num_actions_];
    for (std::size_t k = begin; k < end; ++k) {
      const State succ = next_state_[k];
      if (stamp[succ] == static_cast<State>(s)) continue;
      stamp[succ] = static_cast<State>(s);
      pred_state_[fill[succ]++] = static_cast<State>(s);
    }
  }
}

void CompiledMdp::refresh_costs(const FiniteMdp& mdp) {
  // Validate BEFORE writing anything: a rejected revision (e.g. an invalid
  // GA candidate the caller catches and skips) must leave the compiled
  // model exactly as it was, not half-refreshed.
  expect(mdp.num_states() == num_states_, "revised model keeps the state count");
  expect(mdp.num_actions() == num_actions_, "revised model keeps the action count");
  for (std::size_t s = 0; s < num_states_; ++s) {
    ensure(mdp.is_terminal(static_cast<State>(s)) == (terminal_[s] != 0),
           "revised model keeps the terminal set (cost-only revision)");
  }
  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto state = static_cast<State>(s);
    if (terminal_[s] != 0) {
      terminal_cost_[s] = mdp.terminal_cost(state);
      continue;
    }
    for (std::size_t a = 0; a < num_actions_; ++a) {
      const auto action = static_cast<Action>(a);
      cost_[row(state, action)] = mdp.cost(state, action);
    }
  }
}

}  // namespace cav::mdp
