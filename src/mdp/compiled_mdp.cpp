#include "mdp/compiled_mdp.h"

#include <cmath>

#include "util/expect.h"

namespace cav::mdp {

CompiledMdp::CompiledMdp(const FiniteMdp& mdp)
    : num_states_(mdp.num_states()), num_actions_(mdp.num_actions()) {
  expect(num_states_ > 0, "MDP has at least one state");
  expect(num_actions_ > 0, "MDP has at least one action");

  const std::size_t rows = num_states_ * num_actions_;
  row_offsets_.assign(rows + 1, 0);
  cost_.assign(rows, 0.0);
  terminal_.assign(num_states_, 0);
  terminal_cost_.assign(num_states_, 0.0);

  std::vector<Transition> scratch;
  scratch.reserve(64);

  // Two-pass expansion would call transitions() twice per row; instead grow
  // the entry arrays in one pass (the expansion happens exactly once).
  next_state_.reserve(rows);  // lower bound; vectors grow geometrically
  prob_.reserve(rows);

  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      terminal_[s] = 1;
      terminal_cost_[s] = mdp.terminal_cost(state);
      // Terminal rows stay empty; offsets just repeat.
      for (std::size_t a = 0; a < num_actions_; ++a) {
        row_offsets_[row(state, static_cast<Action>(a)) + 1] = next_state_.size();
      }
      continue;
    }
    for (std::size_t a = 0; a < num_actions_; ++a) {
      const auto action = static_cast<Action>(a);
      cost_[row(state, action)] = mdp.cost(state, action);
      scratch.clear();
      mdp.transitions(state, action, scratch);
      double sum = 0.0;
      for (const Transition& t : scratch) {
        ensure(t.next < num_states_, "transition target within the state space");
        ensure(t.prob >= 0.0, "transition probability non-negative");
        next_state_.push_back(t.next);
        prob_.push_back(t.prob);
        sum += t.prob;
      }
      ensure(std::abs(sum - 1.0) < 1e-6, "transition probabilities sum to 1");
      row_offsets_[row(state, action) + 1] = next_state_.size();
    }
  }
}

}  // namespace cav::mdp
