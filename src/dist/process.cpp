#include "dist/process.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "dist/wire.h"

namespace cav::dist {
namespace {

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      in_fd_(std::exchange(other.in_fd_, -1)),
      out_fd_(std::exchange(other.out_fd_, -1)) {}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    kill();
    pid_ = std::exchange(other.pid_, -1);
    in_fd_ = std::exchange(other.in_fd_, -1);
    out_fd_ = std::exchange(other.out_fd_, -1);
  }
  return *this;
}

WorkerProcess::~WorkerProcess() { kill(); }

WorkerProcess WorkerProcess::spawn(const std::string& worker_path) {
  // O_CLOEXEC on every end: a LATER spawn's child must not inherit THIS
  // worker's pipe fds, or closing our in_fd would never deliver EOF while
  // a sibling lives (shutdown would block in waitpid forever).  The child
  // clears the flag on just the two fds it keeps across exec.
  int to_worker[2];   // driver writes -> worker reads
  int from_worker[2]; // worker writes -> driver reads
  if (::pipe2(to_worker, O_CLOEXEC) != 0) throw ProtocolError("pipe() failed");
  if (::pipe2(from_worker, O_CLOEXEC) != 0) {
    ::close(to_worker[0]);
    ::close(to_worker[1]);
    throw ProtocolError("pipe() failed");
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {to_worker[0], to_worker[1], from_worker[0], from_worker[1]}) ::close(fd);
    throw ProtocolError(std::string("fork() failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: immediately exec (the parent may be threaded — nothing but
    // async-signal-safe calls between fork and exec).
    ::close(to_worker[1]);
    ::close(from_worker[0]);
    ::fcntl(to_worker[0], F_SETFD, 0);    // survive the exec below
    ::fcntl(from_worker[1], F_SETFD, 0);
    char in_arg[16];
    char out_arg[16];
    ::snprintf(in_arg, sizeof in_arg, "%d", to_worker[0]);
    ::snprintf(out_arg, sizeof out_arg, "%d", from_worker[1]);
    // execlp: a bare "cav_worker" fallback resolves via PATH; any path
    // containing '/' execs directly.
    ::execlp(worker_path.c_str(), worker_path.c_str(), in_arg, out_arg,
             static_cast<char*>(nullptr));
    // exec failed: exit without running atexit handlers of the forked image.
    ::_exit(127);
  }

  // Parent.
  ::close(to_worker[0]);
  ::close(from_worker[1]);
  WorkerProcess worker;
  worker.pid_ = pid;
  worker.in_fd_ = to_worker[1];
  worker.out_fd_ = from_worker[0];
  return worker;
}

void WorkerProcess::reap_and_close() {
  if (pid_ > 0) {
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
  }
  close_quiet(in_fd_);
  close_quiet(out_fd_);
}

void WorkerProcess::kill() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
  reap_and_close();
}

void WorkerProcess::shutdown() {
  close_quiet(in_fd_);  // worker's read_frame sees EOF and exits 0
  reap_and_close();
}

std::string find_worker_binary(const std::string& override_path) {
  if (!override_path.empty()) return override_path;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string path(buf);
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) return path.substr(0, slash + 1) + "cav_worker";
  }
  return "cav_worker";
}

bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("poll failed: ") + std::strerror(errno));
    }
    // POLLHUP/POLLERR are "readable" for our purposes: read_frame will
    // observe the EOF and report the dead worker.
    return r > 0;
  }
}

}  // namespace cav::dist
