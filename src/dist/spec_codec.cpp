#include "dist/spec_codec.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "acasx/joint_table.h"
#include "acasx/logic_table.h"
#include "baselines/svo.h"
#include "baselines/tcas_like.h"
#include "sim/acasx_cas.h"

namespace cav::dist {
namespace {

void encode_fault_profile(ByteWriter& out, const sim::FaultProfile& f) {
  out.u64(f.comms_blackouts.size());
  for (const sim::TimeWindow& w : f.comms_blackouts) {
    out.f64(w.start_s);
    out.f64(w.end_s);
  }
  out.u8(f.coordination_silent ? 1 : 0);
  out.f64(f.adsb_dropout_burst_prob);
  out.f64(f.adsb_burst_continue_prob);
  out.f64(f.adsb_position_bias_m.x);
  out.f64(f.adsb_position_bias_m.y);
  out.f64(f.adsb_position_bias_m.z);
  out.f64(f.adsb_velocity_bias_mps.x);
  out.f64(f.adsb_velocity_bias_mps.y);
  out.f64(f.adsb_velocity_bias_mps.z);
  out.f64(f.track_staleness_horizon_s);
}

sim::FaultProfile decode_fault_profile(ByteReader& in) {
  sim::FaultProfile f;
  const std::uint64_t n = in.u64();
  // A blackout schedule larger than the payload could hold is garbage.
  if (n > in.remaining() / (2 * sizeof(double))) throw ProtocolError("fault windows overrun");
  f.comms_blackouts.resize(static_cast<std::size_t>(n));
  for (sim::TimeWindow& w : f.comms_blackouts) {
    w.start_s = in.f64();
    w.end_s = in.f64();
  }
  f.coordination_silent = in.u8() != 0;
  f.adsb_dropout_burst_prob = in.f64();
  f.adsb_burst_continue_prob = in.f64();
  f.adsb_position_bias_m = {in.f64(), in.f64(), in.f64()};
  f.adsb_velocity_bias_mps = {in.f64(), in.f64(), in.f64()};
  f.track_staleness_horizon_s = in.f64();
  return f;
}

void encode_sim_config(ByteWriter& out, const sim::SimConfig& s) {
  out.f64(s.dt_dynamics_s);
  out.f64(s.decision_period_s);
  out.f64(s.max_time_s);
  out.f64(s.disturbance.vertical_sigma);
  out.f64(s.disturbance.vertical_reversion);
  out.f64(s.disturbance.horizontal_sigma);
  out.f64(s.disturbance.horizontal_reversion);
  out.f64(s.adsb.horizontal_pos_sigma_m);
  out.f64(s.adsb.vertical_pos_sigma_m);
  out.f64(s.adsb.horizontal_vel_sigma_mps);
  out.f64(s.adsb.vertical_vel_sigma_mps);
  out.f64(s.adsb.dropout_prob);
  out.u8(s.coordination.enabled ? 1 : 0);
  out.f64(s.coordination.message_loss_prob);
  out.f64(s.coordination.burst_enter_prob);
  out.f64(s.coordination.burst_exit_prob);
  out.f64(s.coordination.burst_loss_prob);
  out.u64(static_cast<std::uint64_t>(s.coordination.staleness_ttl_cycles));
  out.f64(s.accident.nmac_horizontal_m);
  out.f64(s.accident.nmac_vertical_m);
  out.f64(s.accident.collision_radius_m);
  encode_fault_profile(out, s.fault);
  out.u32(static_cast<std::uint32_t>(s.threat_policy));
  out.f64(s.threat_gate.range_gate_m);
  out.f64(s.threat_gate.tau_gate_s);
  out.u64(s.threat_gate.max_threats);
  out.f64(s.threat_gate.blocking_vertical_m);
  out.f64(s.threat_gate.assumed_rate_mps);
  out.u8(static_cast<std::uint8_t>(s.airspace.index_mode));
  out.f64(s.airspace.interaction_radius_m);
  out.u8(s.airspace.adaptive_timers ? 1 : 0);
  out.u8(s.record_trajectory ? 1 : 0);
  out.u64(static_cast<std::uint64_t>(s.record_every_n));
}

sim::SimConfig decode_sim_config(ByteReader& in) {
  sim::SimConfig s;
  s.dt_dynamics_s = in.f64();
  s.decision_period_s = in.f64();
  s.max_time_s = in.f64();
  s.disturbance.vertical_sigma = in.f64();
  s.disturbance.vertical_reversion = in.f64();
  s.disturbance.horizontal_sigma = in.f64();
  s.disturbance.horizontal_reversion = in.f64();
  s.adsb.horizontal_pos_sigma_m = in.f64();
  s.adsb.vertical_pos_sigma_m = in.f64();
  s.adsb.horizontal_vel_sigma_mps = in.f64();
  s.adsb.vertical_vel_sigma_mps = in.f64();
  s.adsb.dropout_prob = in.f64();
  s.coordination.enabled = in.u8() != 0;
  s.coordination.message_loss_prob = in.f64();
  s.coordination.burst_enter_prob = in.f64();
  s.coordination.burst_exit_prob = in.f64();
  s.coordination.burst_loss_prob = in.f64();
  s.coordination.staleness_ttl_cycles = static_cast<int>(in.u64());
  s.accident.nmac_horizontal_m = in.f64();
  s.accident.nmac_vertical_m = in.f64();
  s.accident.collision_radius_m = in.f64();
  s.fault = decode_fault_profile(in);
  const std::uint32_t policy = in.u32();
  if (policy > static_cast<std::uint32_t>(sim::ThreatPolicy::kJointTable)) {
    throw ProtocolError("bad threat policy");
  }
  s.threat_policy = static_cast<sim::ThreatPolicy>(policy);
  s.threat_gate.range_gate_m = in.f64();
  s.threat_gate.tau_gate_s = in.f64();
  s.threat_gate.max_threats = static_cast<std::size_t>(in.u64());
  s.threat_gate.blocking_vertical_m = in.f64();
  s.threat_gate.assumed_rate_mps = in.f64();
  const std::uint8_t index_mode = in.u8();
  if (index_mode > static_cast<std::uint8_t>(sim::IndexMode::kAllPairs)) {
    throw ProtocolError("bad airspace index mode");
  }
  s.airspace.index_mode = static_cast<sim::IndexMode>(index_mode);
  s.airspace.interaction_radius_m = in.f64();
  s.airspace.adaptive_timers = in.u8() != 0;
  s.record_trajectory = in.u8() != 0;
  s.record_every_n = static_cast<int>(in.u64());
  return s;
}

void encode_model_config(ByteWriter& out, const encounter::StatisticalModelConfig& m) {
  out.f64(m.gs_mean_mps);
  out.f64(m.gs_sigma_mps);
  out.f64(m.p_level);
  out.f64(m.level_jitter_mps);
  out.f64(m.vs_max_mps);
  out.f64(m.t_min_s);
  out.f64(m.t_max_s);
  out.f64(m.r_sigma_m);
  out.f64(m.y_sigma_m);
  out.array<double>(m.ranges.lo);
  out.array<double>(m.ranges.hi);
}

encounter::StatisticalModelConfig decode_model_config(ByteReader& in) {
  encounter::StatisticalModelConfig m;
  m.gs_mean_mps = in.f64();
  m.gs_sigma_mps = in.f64();
  m.p_level = in.f64();
  m.level_jitter_mps = in.f64();
  m.vs_max_mps = in.f64();
  m.t_min_s = in.f64();
  m.t_max_s = in.f64();
  m.r_sigma_m = in.f64();
  m.y_sigma_m = in.f64();
  const auto lo = in.array<double>();
  const auto hi = in.array<double>();
  if (lo.size() != encounter::kNumParams || hi.size() != encounter::kNumParams) {
    throw ProtocolError("bad parameter range size");
  }
  std::copy(lo.begin(), lo.end(), m.ranges.lo.begin());
  std::copy(hi.begin(), hi.end(), m.ranges.hi.begin());
  return m;
}

void encode_cas_spec(ByteWriter& out, const CasSpec& c) {
  out.u32(static_cast<std::uint32_t>(c.kind));
  out.str(c.pair_image);
  out.str(c.joint_image);
}

CasSpec decode_cas_spec(ByteReader& in) {
  CasSpec c;
  const std::uint32_t kind = in.u32();
  if (kind > static_cast<std::uint32_t>(CasKind::kAcasXu)) throw ProtocolError("bad CAS kind");
  c.kind = static_cast<CasKind>(kind);
  c.pair_image = in.str();
  c.joint_image = in.str();
  return c;
}

}  // namespace

sim::CasFactory materialize_cas(const CasSpec& spec) {
  switch (spec.kind) {
    case CasKind::kUnequipped:
      return {};
    case CasKind::kTcasLike:
      return baselines::TcasLikeCas::factory();
    case CasKind::kSvo:
      return baselines::SvoCas::factory();
    case CasKind::kAcasXu: {
      auto table = std::make_shared<const acasx::LogicTable>(
          acasx::LogicTable::open_mapped(spec.pair_image));
      std::shared_ptr<const acasx::JointLogicTable> joint;
      if (!spec.joint_image.empty()) {
        joint = std::make_shared<const acasx::JointLogicTable>(
            acasx::JointLogicTable::open_mapped(spec.joint_image));
      }
      return sim::AcasXuCas::factory(std::move(table), {}, {}, {}, std::move(joint));
    }
  }
  throw ProtocolError("bad CAS kind");
}

core::ValidationCampaign materialize_campaign(const CampaignSpec& spec) {
  return core::ValidationCampaign(encounter::StatisticalEncounterModel(spec.model), spec.config,
                                  spec.system_name, materialize_cas(spec.own_cas),
                                  materialize_cas(spec.intruder_cas));
}

void encode_campaign_spec(ByteWriter& out, const CampaignSpec& spec) {
  encode_model_config(out, spec.model);
  const core::MonteCarloConfig& c = spec.config;
  out.u64(c.encounters);
  out.u64(c.intruders);
  encode_sim_config(out, c.sim);
  out.f64(c.sim_time_margin_s);
  out.u64(c.seed);
  out.f64(c.equipage_fraction);
  out.u32(static_cast<std::uint32_t>(c.unequipped_behavior));
  out.u8(c.own_fault.has_value() ? 1 : 0);
  if (c.own_fault) encode_fault_profile(out, *c.own_fault);
  out.u8(c.intruder_fault.has_value() ? 1 : 0);
  if (c.intruder_fault) encode_fault_profile(out, *c.intruder_fault);
  out.str(spec.system_name);
  encode_cas_spec(out, spec.own_cas);
  encode_cas_spec(out, spec.intruder_cas);
}

CampaignSpec decode_campaign_spec(ByteReader& in) {
  CampaignSpec spec;
  spec.model = decode_model_config(in);
  core::MonteCarloConfig& c = spec.config;
  c.encounters = static_cast<std::size_t>(in.u64());
  c.intruders = static_cast<std::size_t>(in.u64());
  c.sim = decode_sim_config(in);
  c.sim_time_margin_s = in.f64();
  c.seed = in.u64();
  c.equipage_fraction = in.f64();
  const std::uint32_t behavior = in.u32();
  if (behavior > static_cast<std::uint32_t>(core::UnequippedBehavior::kManeuverAtCpa)) {
    throw ProtocolError("bad unequipped behavior");
  }
  c.unequipped_behavior = static_cast<core::UnequippedBehavior>(behavior);
  if (in.u8() != 0) c.own_fault = decode_fault_profile(in);
  if (in.u8() != 0) c.intruder_fault = decode_fault_profile(in);
  spec.system_name = in.str();
  spec.own_cas = decode_cas_spec(in);
  spec.intruder_cas = decode_cas_spec(in);
  return spec;
}

void encode_stripe(ByteWriter& out, const core::EncounterStripe& stripe) {
  out.u64(stripe.seed);
  out.u64(stripe.begin);
  out.u64(stripe.end);
}

core::EncounterStripe decode_stripe(ByteReader& in) {
  core::EncounterStripe stripe;
  stripe.seed = in.u64();
  stripe.begin = static_cast<std::size_t>(in.u64());
  stripe.end = static_cast<std::size_t>(in.u64());
  if (stripe.end < stripe.begin) throw ProtocolError("bad stripe range");
  return stripe;
}

void encode_stripe_result(ByteWriter& out, const core::StripeResult& result) {
  out.u64(result.first_cell);
  out.u64(result.cells.size());
  for (const core::StripeCell& cell : result.cells) {
    out.u64(cell.nmacs);
    out.u64(cell.alerts);
    out.f64(cell.sep_sum);
    out.f64(cell.wall_s);
  }
}

core::StripeResult decode_stripe_result(ByteReader& in) {
  core::StripeResult result;
  result.first_cell = static_cast<std::size_t>(in.u64());
  const std::uint64_t n = in.u64();
  if (n > in.remaining() / (4 * sizeof(std::uint64_t))) {
    throw ProtocolError("stripe cells overrun");
  }
  result.cells.resize(static_cast<std::size_t>(n));
  for (core::StripeCell& cell : result.cells) {
    cell.nmacs = in.u64();
    cell.alerts = in.u64();
    cell.sep_sum = in.f64();
    cell.wall_s = in.f64();
  }
  return result;
}

}  // namespace cav::dist
