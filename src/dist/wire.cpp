#include "dist/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cav::dist {
namespace {

/// Full write with EINTR retry; throws on error or closed pipe.
void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("write failed: ") + std::strerror(errno));
    }
    if (w == 0) throw ProtocolError("write returned 0");
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Full read with EINTR retry.  Returns false on EOF before the first
/// byte (a legal frame boundary); EOF after a partial read throws.
bool read_all(int fd, void* out, std::size_t n) {
  auto* p = static_cast<std::byte*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;
      throw ProtocolError("EOF inside frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, MsgType type, std::span<const std::byte> payload) {
  if (payload.size() > kMaxPayloadBytes) throw ProtocolError("payload exceeds frame limit");
  std::uint32_t head[2] = {kFrameMagic, static_cast<std::uint32_t>(type)};
  const std::uint64_t len = payload.size();
  write_all(fd, head, sizeof head);
  write_all(fd, &len, sizeof len);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint32_t head[2];
  if (!read_all(fd, head, sizeof head)) return std::nullopt;
  if (head[0] != kFrameMagic) throw ProtocolError("bad frame magic");
  std::uint64_t len = 0;
  if (!read_all(fd, &len, sizeof len)) throw ProtocolError("EOF inside frame header");
  if (len > kMaxPayloadBytes) throw ProtocolError("frame length exceeds limit");

  Frame frame;
  frame.type = static_cast<MsgType>(head[1]);
  frame.payload.resize(static_cast<std::size_t>(len));
  if (len > 0 && !read_all(fd, frame.payload.data(), frame.payload.size())) {
    throw ProtocolError("EOF inside frame payload");
  }
  return frame;
}

void ByteWriter::raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) throw ProtocolError("string overruns payload");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void ByteReader::raw(void* out, std::size_t n) {
  if (n > remaining()) throw ProtocolError("payload overrun");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

}  // namespace cav::dist
