// Sharded validation campaigns: N cav_worker processes pulling
// EncounterStripe work units off one driver (ROADMAP item 2).
//
// The driver materializes the same core::ValidationCampaign the workers
// do, partitions it with make_stripes(), hands stripes out over the
// dist/wire.h pipe protocol, and merges the StripeResult partials through
// ValidationCampaign::merge — so the merged SystemRates are BIT-IDENTICAL
// to the single-process run for any worker count, stripe count, or
// completion order (the canonical-cell contract; asserted in
// tests/test_dist_campaign.cpp).
//
// Degraded-mode contract: a campaign NEVER hangs and never silently drops
// encounters.  A worker that dies (EOF on its pipe) or blows the stripe
// deadline is killed and reaped, its in-flight stripe is requeued, and a
// replacement is spawned while the respawn budget lasts.  When no workers
// remain, the driver finishes the queue in-process.  Every such event
// increments CampaignResult::requeues, sets `degraded`, and appends a
// human-readable note — the rates themselves stay bit-identical, because
// requeued stripes are re-RUN, not approximated.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <sys/types.h>

#include "core/validation_campaign.h"
#include "dist/spec_codec.h"

namespace cav::dist {

struct CampaignDriverOptions {
  /// Worker processes to spawn.  0 or 1 falls back to running the whole
  /// campaign in-process (still through the stripe surface).
  std::size_t num_workers = 2;
  /// Target work units per worker: the campaign is cut into
  /// num_workers * stripes_per_worker stripes (capped by the campaign's
  /// cell count), so a slow worker strands at most 1/stripes_per_worker
  /// of its share when it dies.
  std::size_t stripes_per_worker = 4;
  /// Per-stripe deadline. <= 0 disables (trust workers not to wedge).
  double stripe_deadline_s = 0.0;
  /// Replacement workers the campaign may spawn before giving up on a
  /// process-level run and draining the queue in-process.
  std::size_t max_respawns = 2;
  /// Path to the cav_worker binary; empty resolves next to
  /// /proc/self/exe (dist/process.h).
  std::string worker_path;

  // Test hooks (not used in production): observe spawns — e.g. to SIGKILL
  /// a worker mid-campaign — and stripe completions.
  std::function<void(pid_t)> on_spawn;
  std::function<void(std::size_t completed, std::size_t total)> on_result;
};

/// Run `spec` sharded across a worker fleet.  Blocks until the campaign
/// completes; returns the merged result (see degraded-mode contract
/// above).  Throws only on setup-time failures (unreadable table images,
/// malformed spec) — worker-runtime failures degrade instead.
core::CampaignResult run_sharded_campaign(const CampaignSpec& spec,
                                          const CampaignDriverOptions& options = {});

}  // namespace cav::dist
