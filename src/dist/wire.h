// Length-prefixed frame protocol between dist drivers and cav_worker
// processes (pipes), plus the little-endian-host byte codec the payloads
// use.
//
// Frame layout on the wire:
//
//   u32 magic "CAVW" | u32 MsgType | u64 payload_bytes | payload ...
//
// The protocol is strictly request/response over private pipes, so there
// is no resync: any malformed byte — bad magic, unknown type, an
// over-limit length, or EOF inside a frame — is a ProtocolError and the
// peer is abandoned (the driver requeues its work; the worker exits).
// A clean EOF at a frame boundary is not an error: it is how a worker
// observes driver shutdown, and how the driver observes worker death
// (read_frame returns nullopt).
//
// Fields and payloads are host byte order, like every other artifact in
// this codebase (serving/table_image.h): the fleet is homogeneous
// little-endian.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace cav::dist {

/// Malformed frame or payload.  Deliberately distinct from
/// serving::TableIoError: protocol errors mean "abandon this peer", not
/// "this file is bad".
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error("dist: " + what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0x57564143;  // "CAVW" little-endian
/// Per-frame payload ceiling.  Large enough for a full joint slab of the
/// standard table (~tens of MB); small enough that a corrupted length
/// field fails fast instead of triggering a giant allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 31;

enum class MsgType : std::uint32_t {
  // driver -> worker
  kCampaignSetup = 1,   ///< model + MC config + system name + CAS specs
  kRunStripe = 2,       ///< one EncounterStripe
  kPairSolveSetup = 3,  ///< "STEN" stencil image path
  kPairSweep = 4,       ///< tau layer slice: [begin, end) + full v_prev
  kJointSolveSetup = 5, ///< "STE2" stencil image path
  kJointSlab = 6,       ///< one (delta_bin, sense) slab
  kShutdown = 7,        ///< orderly exit; no response
  // worker -> driver
  kHello = 10,          ///< first frame after exec: protocol version + pid
  kStripeResult = 11,
  kPairSweepResult = 12,
  kJointSlabResult = 13,
  kWorkerError = 14,    ///< human-readable failure; worker exits after
};

inline constexpr std::uint32_t kProtocolVersion = 1;

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::vector<std::byte> payload;
};

/// Write one frame; throws ProtocolError on any short/failed write
/// (EINTR is retried).  SIGPIPE must be ignored by the process (both
/// driver and worker do) so a dead peer surfaces as EPIPE here.
void write_frame(int fd, MsgType type, std::span<const std::byte> payload);

/// Read one frame.  Returns nullopt on clean EOF at a frame boundary;
/// throws ProtocolError on bad magic, unknown length, or EOF mid-frame.
std::optional<Frame> read_frame(int fd);

/// Payload builder: append-only little scalar/string/array codec.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  template <typename T>
  void array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(values.size());
    raw(values.data(), values.size_bytes());
  }

  std::span<const std::byte> bytes() const { return buf_; }

 private:
  void raw(const void* data, std::size_t n);
  std::vector<std::byte> buf_;
};

/// Payload parser: every read is bounds-checked and throws ProtocolError
/// on overrun, so a truncated or garbage payload can never read past the
/// frame.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  double f64() { return scalar<double>(); }
  std::string str();
  template <typename T>
  std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    if (n > remaining() / sizeof(T)) throw ProtocolError("array overruns payload");
    std::vector<T> out(static_cast<std::size_t>(n));
    raw(out.data(), out.size() * sizeof(T));
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Assert the payload was consumed exactly — catches both truncated
  /// writers and trailing garbage.
  void expect_end() const {
    if (pos_ != data_.size()) throw ProtocolError("trailing bytes in payload");
  }

 private:
  template <typename T>
  T scalar() {
    T v;
    raw(&v, sizeof v);
    return v;
  }
  void raw(void* out, std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace cav::dist
