#include "dist/campaign_driver.h"

#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "dist/process.h"
#include "dist/wire.h"
#include "util/expect.h"

namespace cav::dist {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One worker slot: the process plus the stripe it is chewing on.
struct Slot {
  WorkerProcess proc;
  std::optional<std::size_t> stripe;  ///< index into the stripe list
  Clock::time_point issued_at{};
};

/// Driver-side campaign state shared by the handlers below.
struct Run {
  const core::ValidationCampaign* campaign = nullptr;
  const CampaignDriverOptions* options = nullptr;
  std::vector<core::EncounterStripe> stripes;
  std::vector<std::byte> setup_payload;

  std::deque<std::size_t> queue;  ///< unissued stripe indices
  std::vector<core::StripeResult> results;
  std::vector<Slot> slots;

  std::size_t respawns_left = 0;
  core::CampaignResult report;

  std::size_t completed() const { return results.size(); }

  void note(std::string text) {
    report.degraded = true;
    report.notes.push_back(std::move(text));
  }

  /// Hand the slot its next stripe, if any.  Returns false when the send
  /// failed (dead pipe) — caller handles the death.
  bool assign(Slot& slot) {
    if (queue.empty() || !slot.proc.alive()) return true;
    const std::size_t idx = queue.front();
    ByteWriter out;
    encode_stripe(out, stripes[idx]);
    try {
      write_frame(slot.proc.in_fd(), MsgType::kRunStripe, out.bytes());
    } catch (const ProtocolError&) {
      return false;
    }
    queue.pop_front();
    slot.stripe = idx;
    slot.issued_at = Clock::now();
    return true;
  }

  /// Spawn + setup a fresh worker into `slot`.  Returns false when the
  /// spawn or setup write failed.
  bool spawn_into(Slot& slot) {
    try {
      slot.proc = WorkerProcess::spawn(find_worker_binary(options->worker_path));
      write_frame(slot.proc.in_fd(), MsgType::kCampaignSetup, setup_payload);
    } catch (const ProtocolError&) {
      slot.proc.kill();
      return false;
    }
    slot.stripe.reset();
    if (options->on_spawn) options->on_spawn(slot.proc.pid());
    return true;
  }

  /// A worker died or was condemned: reclaim its stripe, kill it, and
  /// respawn while the budget lasts.
  void handle_death(Slot& slot, const std::string& why) {
    if (slot.stripe.has_value()) {
      queue.push_front(*slot.stripe);
      ++report.requeues;
      slot.stripe.reset();
    }
    note("worker lost (" + why + "); stripe requeued");
    slot.proc.kill();
    while (respawns_left > 0) {
      --respawns_left;
      if (spawn_into(slot)) {
        if (!assign(slot)) {
          handle_death(slot, "respawned worker unwritable");
        }
        return;
      }
      note("respawn failed");
    }
  }

  std::size_t live_workers() const {
    std::size_t n = 0;
    for (const Slot& s : slots) n += s.proc.alive() ? 1 : 0;
    return n;
  }
};

/// Read exactly one frame from a readable worker and fold it in.
void drain_one_frame(Run& run, Slot& slot) {
  std::optional<Frame> frame;
  try {
    frame = read_frame(slot.proc.out_fd());
  } catch (const ProtocolError& e) {
    run.handle_death(slot, e.what());
    return;
  }
  if (!frame.has_value()) {
    run.handle_death(slot, "pipe closed");
    return;
  }

  try {
    ByteReader in(frame->payload);
    switch (frame->type) {
      case MsgType::kHello: {
        const std::uint32_t version = in.u32();
        if (version != kProtocolVersion) {
          run.handle_death(slot, "protocol version mismatch");
        }
        return;
      }
      case MsgType::kStripeResult: {
        core::StripeResult result = decode_stripe_result(in);
        in.expect_end();
        slot.stripe.reset();
        run.results.push_back(std::move(result));
        if (run.options->on_result) {
          run.options->on_result(run.completed(), run.stripes.size());
        }
        if (!run.assign(slot)) run.handle_death(slot, "pipe closed");
        return;
      }
      case MsgType::kWorkerError:
        run.handle_death(slot, "worker error: " + in.str());
        return;
      default:
        run.handle_death(slot, "unexpected frame from worker");
        return;
    }
  } catch (const ProtocolError& e) {
    run.handle_death(slot, e.what());
  }
}

}  // namespace

core::CampaignResult run_sharded_campaign(const CampaignSpec& spec,
                                          const CampaignDriverOptions& options) {
  // A dead worker must surface as EPIPE on write, not kill the driver.
  ::signal(SIGPIPE, SIG_IGN);
  const auto t0 = Clock::now();

  Run run;
  run.options = &options;
  const core::ValidationCampaign campaign = materialize_campaign(spec);
  run.campaign = &campaign;

  const std::size_t want_stripes =
      std::max<std::size_t>(1, options.num_workers * std::max<std::size_t>(1, options.stripes_per_worker));
  run.stripes = campaign.make_stripes(want_stripes);
  run.report.work_units = run.stripes.size();
  run.respawns_left = options.max_respawns;

  // Degenerate shapes run in-process, still through the stripe surface.
  const bool in_process_only = options.num_workers <= 1 || run.stripes.size() <= 1;
  if (!in_process_only) {
    ByteWriter setup;
    encode_campaign_spec(setup, spec);
    run.setup_payload.assign(setup.bytes().begin(), setup.bytes().end());

    for (std::size_t i = 0; i < run.stripes.size(); ++i) run.queue.push_back(i);

    run.slots.resize(std::min(options.num_workers, run.stripes.size()));
    for (Slot& slot : run.slots) {
      if (!run.spawn_into(slot)) {
        run.note("initial spawn failed");
        continue;
      }
      if (!run.assign(slot)) run.handle_death(slot, "pipe closed at setup");
    }

    const bool deadline_enabled = options.stripe_deadline_s > 0.0;
    while (run.completed() < run.stripes.size() && run.live_workers() > 0) {
      // Requeues can leave live workers idle while the queue is
      // non-empty; re-dispatch before blocking, or the poll below would
      // wait on workers that owe nothing.
      for (Slot& slot : run.slots) {
        if (slot.proc.alive() && !slot.stripe.has_value() && !run.queue.empty()) {
          if (!run.assign(slot)) run.handle_death(slot, "pipe closed");
        }
      }
      // poll every live worker with an outstanding or upcoming frame.
      std::vector<struct pollfd> fds;
      std::vector<std::size_t> fd_slot;
      for (std::size_t i = 0; i < run.slots.size(); ++i) {
        if (!run.slots[i].proc.alive()) continue;
        fds.push_back({run.slots[i].proc.out_fd(), POLLIN, 0});
        fd_slot.push_back(i);
      }
      if (fds.empty()) break;

      int timeout_ms = -1;
      if (deadline_enabled) {
        double soonest = options.stripe_deadline_s;
        for (const Slot& s : run.slots) {
          if (s.proc.alive() && s.stripe.has_value()) {
            soonest = std::min(soonest,
                               options.stripe_deadline_s - seconds_since(s.issued_at));
          }
        }
        timeout_ms = std::max(1, static_cast<int>(soonest * 1e3) + 1);
      }

      int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        run.note("poll failed; finishing in-process");
        break;
      }
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          drain_one_frame(run, run.slots[fd_slot[k]]);
        }
      }
      if (deadline_enabled) {
        for (Slot& slot : run.slots) {
          if (slot.proc.alive() && slot.stripe.has_value() &&
              seconds_since(slot.issued_at) > options.stripe_deadline_s) {
            run.handle_death(slot, "stripe deadline exceeded");
          }
        }
      }
    }
    // Reclaim any stripe still in flight (the loop can exit with live
    // workers after a poll failure) before shutting the fleet down.
    for (Slot& slot : run.slots) {
      if (slot.stripe.has_value()) {
        run.queue.push_front(*slot.stripe);
        ++run.report.requeues;
        slot.stripe.reset();
      }
      slot.proc.shutdown();
    }
  }

  // Whatever is left — everything (in-process mode), stragglers after the
  // fleet died, or requeued stripes with no worker to take them — runs
  // here.  Same kernel, same per-cell accumulation: merged rates stay
  // bit-identical.
  if (in_process_only) {
    for (std::size_t i = 0; i < run.stripes.size(); ++i) run.queue.push_back(i);
  } else if (!run.queue.empty() || run.completed() < run.stripes.size()) {
    run.note("worker fleet exhausted; finishing " +
             std::to_string(run.stripes.size() - run.completed()) + " stripes in-process");
  }
  // Requeued indices may coexist with never-issued ones; the queue holds
  // exactly the stripes with no result yet.
  while (!run.queue.empty()) {
    const std::size_t idx = run.queue.front();
    run.queue.pop_front();
    run.results.push_back(campaign.run_stripe(run.stripes[idx]));
    if (options.on_result && !in_process_only) {
      options.on_result(run.completed(), run.stripes.size());
    }
  }

  expect(run.completed() == run.stripes.size(), "every stripe produced a result");
  run.report.rates = campaign.merge(run.results);
  run.report.wall_s = seconds_since(t0);
  return run.report;
}

}  // namespace cav::dist
