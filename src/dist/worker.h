// The cav_worker process body: a single-threaded request/response loop
// over two pipe fds (requests in, results out).
//
// A worker is STATEFUL between frames — kCampaignSetup / kPairSolveSetup /
// kJointSolveSetup install the campaign or the mmap'd stencils once, then
// any number of kRunStripe / kPairSweep / kJointSlab requests run against
// them — but carries NO accumulation state: every response is a pure
// function of (setup, request), which is what lets the driver requeue a
// lost request on any other worker and still merge bit-identically.
//
// Workers are deliberately single-threaded (no ThreadPool): process-level
// sharding is the parallelism, and keeping the worker serial makes its
// per-cell accumulation order trivially canonical.
//
// Test knobs (read from the environment at startup, never set in
// production):
//   CAV_WORKER_EXIT_AFTER_STRIPES=N  _exit(9) abruptly after answering N
//                                    stripes — a deterministic stand-in
//                                    for SIGKILL mid-campaign
//   CAV_WORKER_HANG_AFTER_STRIPES=N  stop answering after N stripes (the
//                                    deadline/requeue path)
#pragma once

namespace cav::dist {

/// Serve frames from `in_fd` until EOF or kShutdown.  Returns the
/// process exit code: 0 on orderly shutdown, 1 after a protocol error or
/// an unhandleable exception (reported on `out_fd` as kWorkerError when
/// the pipe still works).  Installs SIG_IGN for SIGPIPE.
int worker_main(int in_fd, int out_fd);

}  // namespace cav::dist
