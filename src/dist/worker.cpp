#include "dist/worker.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "core/validation_campaign.h"
#include "dist/spec_codec.h"
#include "dist/wire.h"
#include "util/expect.h"

namespace cav::dist {
namespace {

std::size_t env_count(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10)) : 0;
}

/// Per-process request state: the installed campaign / solver contexts.
struct WorkerState {
  std::optional<core::ValidationCampaign> campaign;
  std::optional<acasx::CompiledAcasModel> pair_model;
  std::optional<acasx::JointOfflineSolver> joint_solver;

  // Test knobs (see worker.h).
  std::size_t exit_after_stripes = env_count("CAV_WORKER_EXIT_AFTER_STRIPES");
  std::size_t hang_after_stripes = env_count("CAV_WORKER_HANG_AFTER_STRIPES");
  std::size_t stripes_served = 0;
};

void reply(int out_fd, MsgType type, const ByteWriter& payload) {
  write_frame(out_fd, type, payload.bytes());
}

void handle_run_stripe(WorkerState& state, ByteReader& in, int out_fd) {
  if (!state.campaign.has_value()) throw ProtocolError("stripe before campaign setup");
  const core::EncounterStripe stripe = decode_stripe(in);
  in.expect_end();

  if (state.exit_after_stripes != 0 && state.stripes_served >= state.exit_after_stripes) {
    _exit(9);  // test knob: die as abruptly as SIGKILL would
  }
  if (state.hang_after_stripes != 0 && state.stripes_served >= state.hang_after_stripes) {
    for (;;) pause();  // test knob: stop answering, let the deadline fire
  }

  const core::StripeResult result = state.campaign->run_stripe(stripe);
  ++state.stripes_served;
  ByteWriter out;
  encode_stripe_result(out, result);
  reply(out_fd, MsgType::kStripeResult, out);
}

void handle_pair_sweep(WorkerState& state, ByteReader& in, int out_fd) {
  if (!state.pair_model.has_value()) throw ProtocolError("sweep before pair solve setup");
  const acasx::CompiledAcasModel& model = *state.pair_model;
  const std::size_t num_points = model.config().space.grid().size();

  const std::uint64_t begin = in.u64();
  const std::uint64_t end = in.u64();
  const std::vector<float> v_prev = in.array<float>();
  in.expect_end();
  if (begin > end || end > num_points) throw ProtocolError("sweep range outside grid");
  if (v_prev.size() != num_points * acasx::kNumAdvisories) {
    throw ProtocolError("value layer does not match grid");
  }

  const std::size_t points = static_cast<std::size_t>(end - begin);
  std::vector<float> q(points * acasx::kNumAdvisories * acasx::kNumAdvisories);
  std::vector<float> v(points * acasx::kNumAdvisories);
  sweep_pair_layer_range(model.config(), model.stencils(), v_prev,
                         static_cast<std::size_t>(begin), static_cast<std::size_t>(end),
                         q.data(), v.data());

  ByteWriter out;
  out.u64(begin);
  out.u64(end);
  out.array<float>(q);
  out.array<float>(v);
  reply(out_fd, MsgType::kPairSweepResult, out);
}

void handle_joint_slab(WorkerState& state, ByteReader& in, int out_fd) {
  if (!state.joint_solver.has_value()) throw ProtocolError("slab before joint solve setup");
  const acasx::JointOfflineSolver& solver = *state.joint_solver;
  const acasx::JointConfig& config = solver.config();

  const std::uint64_t delta_bin = in.u64();
  const std::uint32_t sense_raw = in.u32();
  in.expect_end();
  if (delta_bin >= config.secondary.num_delta_bins) throw ProtocolError("bad delta bin");
  if (sense_raw >= acasx::kNumSecondarySenses) throw ProtocolError("bad sense class");
  const auto sense = static_cast<acasx::SecondarySense>(sense_raw);

  const std::size_t slab_floats = (config.space.tau_max + 1) * config.grid().size() *
                                  acasx::kNumAdvisories * acasx::kNumAdvisories;
  std::vector<float> slab(slab_floats);
  solve_joint_slab(config, solver.sense_stencils(sense), static_cast<std::size_t>(delta_bin),
                   sense, nullptr, slab);

  ByteWriter out;
  out.u64(delta_bin);
  out.u32(sense_raw);
  out.array<float>(slab);
  reply(out_fd, MsgType::kJointSlabResult, out);
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  ::signal(SIGPIPE, SIG_IGN);
  WorkerState state;

  try {
    ByteWriter hello;
    hello.u32(kProtocolVersion);
    hello.u64(static_cast<std::uint64_t>(::getpid()));
    reply(out_fd, MsgType::kHello, hello);

    for (;;) {
      std::optional<Frame> frame = read_frame(in_fd);
      if (!frame.has_value()) return 0;  // driver closed the pipe: orderly exit
      ByteReader in(frame->payload);
      switch (frame->type) {
        case MsgType::kShutdown:
          return 0;
        case MsgType::kCampaignSetup:
          state.campaign.emplace(materialize_campaign(decode_campaign_spec(in)));
          in.expect_end();
          break;
        case MsgType::kRunStripe:
          handle_run_stripe(state, in, out_fd);
          break;
        case MsgType::kPairSolveSetup:
          state.pair_model.emplace(acasx::CompiledAcasModel::open_stencils(in.str()));
          in.expect_end();
          break;
        case MsgType::kPairSweep:
          handle_pair_sweep(state, in, out_fd);
          break;
        case MsgType::kJointSolveSetup:
          state.joint_solver.emplace(acasx::JointOfflineSolver::open_stencils(in.str()));
          in.expect_end();
          break;
        case MsgType::kJointSlab:
          handle_joint_slab(state, in, out_fd);
          break;
        default:
          throw ProtocolError("unexpected frame type in worker");
      }
    }
  } catch (const std::exception& e) {
    // Best effort: tell the driver why before dying (the pipe may already
    // be gone — SIGPIPE is ignored, so this at worst throws again).
    try {
      ByteWriter out;
      out.str(e.what());
      reply(out_fd, MsgType::kWorkerError, out);
    } catch (...) {
    }
    return 1;
  }
}

}  // namespace cav::dist
