// Sharded offline solves over the same cav_worker fleet as the campaign
// driver.
//
// Two workloads, two sharding shapes:
//
//  * Pairwise logic table: tau layers are SEQUENTIAL (layer t needs the
//    full value layer t-1), so the driver broadcasts v_prev each layer
//    and shards the layer's grid-point sweep into contiguous slices.
//    Slices land back in the table exactly where the serial sweep would
//    have written them (offline_solver.h's sweep_pair_layer_range runs on
//    both sides), so the assembled table is BIT-IDENTICAL to
//    solve_logic_table(config).
//
//  * Joint table: (delta bin, sense class) slabs are fully INDEPENDENT,
//    so they are handed out dynamically like campaign stripes; each
//    worker solves whole slabs (acasx/joint_solver.h's solve_joint_slab)
//    and the driver concatenates — bit-identical to solve_joint_table.
//
// Workers never recompile the transition structure: the driver compiles
// the stencils once (or reuses `stencil_image` when it already exists),
// dumps them as a "STEN"/"STE2" TableImage, and every worker mmaps that
// one file (shared physical pages fleet-wide).
//
// Degraded-mode contract mirrors the campaign driver: a dead worker's
// slice/slab is recomputed — in-process via the identical kernel — never
// approximated; the solve completes (possibly slowly) as long as the
// driver lives.
#pragma once

#include <cstddef>
#include <string>

#include "acasx/joint_table.h"
#include "acasx/logic_table.h"

namespace cav::dist {

struct SolveDriverOptions {
  /// Worker processes.  0 or 1 solves fully in-process.
  std::size_t num_workers = 2;
  /// Path to the cav_worker binary; empty resolves next to /proc/self/exe.
  std::string worker_path;
};

/// What a sharded solve actually did — determinism is guaranteed either
/// way; this reports how much of the work ran where.
struct ShardedSolveReport {
  std::size_t workers_used = 0;    ///< workers that answered at least once
  std::size_t requeues = 0;        ///< slices/slabs recomputed after a loss
  bool degraded = false;           ///< some worker died mid-solve
  double stencil_build_s = 0.0;    ///< compiling + dumping (0 when reused)
  double wall_s = 0.0;
};

/// Sharded pairwise solve.  `stencil_image` names the "STEN" image to
/// share with workers: when the file is missing it is compiled and
/// written first; when present it is validated against `config`'s grid
/// and reused.  Returns a table bit-identical to
/// solve_logic_table(config) (asserted in tests/test_dist_solve.cpp).
acasx::LogicTable solve_logic_table_sharded(const acasx::AcasXuConfig& config,
                                            const std::string& stencil_image,
                                            const SolveDriverOptions& options = {},
                                            ShardedSolveReport* report = nullptr);

/// Sharded joint solve over (delta bin, sense) slabs; `stencil_image` is
/// the "STE2" analogue.  Bit-identical to solve_joint_table(config).
acasx::JointLogicTable solve_joint_table_sharded(const acasx::JointConfig& config,
                                                 const std::string& stencil_image,
                                                 const SolveDriverOptions& options = {},
                                                 ShardedSolveReport* report = nullptr);

}  // namespace cav::dist
