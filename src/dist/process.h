// fork/exec plumbing for the cav_worker fleet.
//
// Drivers never bare-fork: the parent process usually carries a live
// ThreadPool, and forking a threaded process leaves the child's heap and
// locks in an undefined state.  Instead each worker is fork + immediate
// exec of the separate `cav_worker` binary (tools/cav_worker.cpp), which
// re-enters through dist::worker_main with two inherited pipe fds.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <vector>

namespace cav::dist {

/// One spawned worker and its pipe endpoints (driver side).
class WorkerProcess {
 public:
  WorkerProcess() = default;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  /// Kills (SIGKILL) and reaps any still-live child.
  ~WorkerProcess();

  /// fork + exec `worker_path` with the pipe fds as argv.  Throws
  /// ProtocolError when the binary cannot be spawned.  The worker's
  /// kHello frame is NOT consumed here — the driver reads it through the
  /// normal poll loop.
  static WorkerProcess spawn(const std::string& worker_path);

  bool alive() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  int in_fd() const { return in_fd_; }    ///< write requests here
  int out_fd() const { return out_fd_; }  ///< read responses here

  /// SIGKILL + waitpid + close fds.  Idempotent.
  void kill();
  /// Close the request pipe (worker sees EOF and exits) and reap.
  void shutdown();

 private:
  void reap_and_close();

  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
};

/// Locate the cav_worker binary: `override` when non-empty, else
/// "cav_worker" next to the running executable (/proc/self/exe), else a
/// bare "cav_worker" left to PATH resolution.
std::string find_worker_binary(const std::string& override_path);

/// poll() `fd` for readability.  Returns true when readable, false on
/// timeout; `timeout_ms < 0` blocks.  EINTR retries.
bool wait_readable(int fd, int timeout_ms);

}  // namespace cav::dist
