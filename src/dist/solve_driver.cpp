#include "dist/solve_driver.h"

#include <poll.h>
#include <signal.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <vector>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "dist/process.h"
#include "dist/wire.h"
#include "util/expect.h"

namespace cav::dist {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool same_space(const acasx::StateSpaceConfig& a, const acasx::StateSpaceConfig& b) {
  return a.h_ft == b.h_ft && a.dh_own_fps == b.dh_own_fps && a.dh_int_fps == b.dh_int_fps &&
         a.tau_max == b.tau_max;
}

bool same_dynamics(const acasx::DynamicsConfig& a, const acasx::DynamicsConfig& b) {
  return a.dt_s == b.dt_s && a.accel_initial_fps2 == b.accel_initial_fps2 &&
         a.accel_strength_fps2 == b.accel_strength_fps2 &&
         a.accel_noise_sigma_fps2 == b.accel_noise_sigma_fps2;
}

bool same_costs(const acasx::CostModel& a, const acasx::CostModel& b) {
  return a.nmac_cost == b.nmac_cost && a.nmac_h_ft == b.nmac_h_ft &&
         a.maneuver_cost == b.maneuver_cost &&
         a.strengthened_maneuver_cost == b.strengthened_maneuver_cost &&
         a.level_reward == b.level_reward && a.strengthen_cost == b.strengthen_cost &&
         a.reversal_cost == b.reversal_cost && a.termination_cost == b.termination_cost;
}

bool same_pair_config(const acasx::AcasXuConfig& a, const acasx::AcasXuConfig& b) {
  return same_space(a.space, b.space) && same_dynamics(a.dynamics, b.dynamics) &&
         same_costs(a.costs, b.costs);
}

bool same_secondary(const acasx::SecondaryAbstraction& a, const acasx::SecondaryAbstraction& b) {
  return a.h2_ft == b.h2_ft && a.num_delta_bins == b.num_delta_bins &&
         a.delta_step_s == b.delta_step_s && a.sense_rate_fps == b.sense_rate_fps &&
         a.sense_level_threshold_fps == b.sense_level_threshold_fps;
}

bool same_joint_config(const acasx::JointConfig& a, const acasx::JointConfig& b) {
  return same_space(a.space, b.space) && same_secondary(a.secondary, b.secondary) &&
         same_dynamics(a.dynamics, b.dynamics) && same_costs(a.costs, b.costs);
}

/// One solve worker: the process plus its current assignment (a grid
/// slice for the pair solve, a slab id for the joint solve).
struct SolveWorker {
  WorkerProcess proc;
  std::optional<std::size_t> job;
  bool answered = false;  ///< counted into workers_used once it replies
};

/// Spawn the fleet, consume each worker's kHello, and send the one setup
/// frame (`setup_type` + image path).  Workers that fail any of those
/// steps are dropped on the floor — the caller only ever iterates live
/// slots, and a short fleet just means more in-process fallback work.
std::vector<SolveWorker> spawn_solve_fleet(std::size_t count, const SolveDriverOptions& options,
                                           MsgType setup_type, const std::string& image_path,
                                           ShardedSolveReport& report) {
  std::vector<SolveWorker> fleet(count);
  for (SolveWorker& w : fleet) {
    try {
      w.proc = WorkerProcess::spawn(find_worker_binary(options.worker_path));
      std::optional<Frame> hello = read_frame(w.proc.out_fd());
      if (!hello.has_value() || hello->type != MsgType::kHello) {
        throw ProtocolError("worker did not say hello");
      }
      ByteReader in(hello->payload);
      if (in.u32() != kProtocolVersion) throw ProtocolError("protocol version mismatch");
      ByteWriter setup;
      setup.str(image_path);
      write_frame(w.proc.in_fd(), setup_type, setup.bytes());
    } catch (const ProtocolError&) {
      w.proc.kill();
      report.degraded = true;
    }
  }
  return fleet;
}

void count_answer(SolveWorker& w, ShardedSolveReport& report) {
  if (!w.answered) {
    w.answered = true;
    ++report.workers_used;
  }
}

}  // namespace

acasx::LogicTable solve_logic_table_sharded(const acasx::AcasXuConfig& config,
                                            const std::string& stencil_image,
                                            const SolveDriverOptions& options,
                                            ShardedSolveReport* report_out) {
  ::signal(SIGPIPE, SIG_IGN);
  const auto t0 = Clock::now();
  ShardedSolveReport report;

  // Compile-or-reuse the shared stencil image.  The driver keeps the
  // compiled model either way: it is the in-process fallback kernel.
  std::optional<acasx::CompiledAcasModel> model;
  if (file_exists(stencil_image)) {
    model.emplace(acasx::CompiledAcasModel::open_stencils(stencil_image));
    if (!same_pair_config(model->config(), config)) model.reset();
  }
  if (!model.has_value()) {
    const auto tb = Clock::now();
    model.emplace(config);
    model->save_stencils(stencil_image);
    report.stencil_build_s = seconds_since(tb);
  }

  acasx::LogicTable table(config);
  const std::size_t num_points = table.num_grid_points();
  const std::size_t num_layers = table.num_tau_layers();
  constexpr std::size_t kQ = acasx::kNumAdvisories * acasx::kNumAdvisories;
  float* const q_base = table.raw().data();

  // Terminal layer (tau = 0): computed driver-side, identically to the
  // serial induction's first step.
  std::vector<float> v_prev(num_points * acasx::kNumAdvisories);
  std::vector<float> v_cur(v_prev.size());
  acasx::fill_pair_terminal_layer(model->config(), v_prev);
  for (std::size_t g = 0; g < num_points; ++g) {
    for (std::size_t ra = 0; ra < acasx::kNumAdvisories; ++ra) {
      const float v = v_prev[g * acasx::kNumAdvisories + ra];
      for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
        q_base[(g * acasx::kNumAdvisories + ra) * acasx::kNumAdvisories + a] = v;
      }
    }
  }

  std::vector<SolveWorker> fleet;
  if (options.num_workers > 1 && num_layers > 1) {
    fleet = spawn_solve_fleet(options.num_workers, options, MsgType::kPairSolveSetup,
                              stencil_image, report);
  }

  // Tau layers are sequential: per layer, broadcast v_prev and shard the
  // grid sweep into one contiguous slice per live worker.  Any slice a
  // worker fails to return is recomputed in-process with the identical
  // kernel, so the assembled layer never depends on fleet health.
  for (std::size_t tau = 1; tau < num_layers; ++tau) {
    float* const q_layer = q_base + tau * num_points * kQ;

    struct Slice {
      std::size_t begin, end;
      bool done = false;
    };
    std::vector<Slice> slices;
    std::vector<SolveWorker*> live;
    for (SolveWorker& w : fleet) {
      if (w.proc.alive()) live.push_back(&w);
    }
    const std::size_t shards = live.empty() ? 1 : live.size();
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * num_points / shards;
      const std::size_t end = (s + 1) * num_points / shards;
      if (begin < end) slices.push_back({begin, end});
    }

    // Issue one slice per worker.
    for (std::size_t s = 0; s < slices.size() && !live.empty(); ++s) {
      SolveWorker& w = *live[s % live.size()];
      if (!w.proc.alive()) continue;
      ByteWriter out;
      out.u64(slices[s].begin);
      out.u64(slices[s].end);
      out.array<float>(v_prev);
      try {
        write_frame(w.proc.in_fd(), MsgType::kPairSweep, out.bytes());
        w.job = s;
      } catch (const ProtocolError&) {
        w.proc.kill();
        report.degraded = true;
      }
    }

    // Collect: per-layer barrier, one response per issued slice.
    for (SolveWorker* wp : live) {
      SolveWorker& w = *wp;
      if (!w.proc.alive() || !w.job.has_value()) continue;
      const std::size_t s = *w.job;
      w.job.reset();
      try {
        std::optional<Frame> frame = read_frame(w.proc.out_fd());
        if (!frame.has_value() || frame->type != MsgType::kPairSweepResult) {
          throw ProtocolError("worker lost mid-sweep");
        }
        ByteReader in(frame->payload);
        const std::uint64_t begin = in.u64();
        const std::uint64_t end = in.u64();
        const std::vector<float> q = in.array<float>();
        const std::vector<float> v = in.array<float>();
        in.expect_end();
        if (begin != slices[s].begin || end != slices[s].end ||
            q.size() != (end - begin) * kQ ||
            v.size() != (end - begin) * acasx::kNumAdvisories) {
          throw ProtocolError("sweep result shape mismatch");
        }
        std::memcpy(q_layer + begin * kQ, q.data(), q.size() * sizeof(float));
        std::memcpy(v_cur.data() + begin * acasx::kNumAdvisories, v.data(),
                    v.size() * sizeof(float));
        slices[s].done = true;
        count_answer(w, report);
      } catch (const ProtocolError&) {
        w.proc.kill();
        report.degraded = true;
      }
    }

    // In-process fallback for anything unissued or lost.
    for (const Slice& slice : slices) {
      if (slice.done) continue;
      if (!fleet.empty()) ++report.requeues;  // lost or unissuable shard
      acasx::sweep_pair_layer_range(model->config(), model->stencils(), v_prev, slice.begin,
                                    slice.end, q_layer + slice.begin * kQ,
                                    v_cur.data() + slice.begin * acasx::kNumAdvisories);
    }
    v_prev.swap(v_cur);
  }

  for (SolveWorker& w : fleet) w.proc.shutdown();
  if (report_out != nullptr) {
    report.wall_s = seconds_since(t0);
    *report_out = report;
  }
  return table;
}

acasx::JointLogicTable solve_joint_table_sharded(const acasx::JointConfig& config,
                                                 const std::string& stencil_image,
                                                 const SolveDriverOptions& options,
                                                 ShardedSolveReport* report_out) {
  ::signal(SIGPIPE, SIG_IGN);
  const auto t0 = Clock::now();
  ShardedSolveReport report;

  std::optional<acasx::JointOfflineSolver> solver;
  if (file_exists(stencil_image)) {
    solver.emplace(acasx::JointOfflineSolver::open_stencils(stencil_image));
    if (!same_joint_config(solver->config(), config)) solver.reset();
  }
  if (!solver.has_value()) {
    const auto tb = Clock::now();
    solver.emplace(config);
    solver->save_stencils(stencil_image);
    report.stencil_build_s = seconds_since(tb);
  }

  acasx::JointLogicTable table(config);
  const std::size_t slab_floats = table.num_tau_layers() * table.num_grid_points() *
                                  acasx::kNumAdvisories * acasx::kNumAdvisories;
  const std::span<float> q{table.raw()};

  // Work units: every (delta bin, sense class) slab, handed out
  // dynamically (slabs are independent, so order does not matter — each
  // lands at its own fixed offset).
  struct SlabJob {
    std::size_t delta_bin;
    acasx::SecondarySense sense;
    std::size_t slab;  ///< table slab index
  };
  std::vector<SlabJob> jobs;
  for (std::size_t db = 0; db < config.secondary.num_delta_bins; ++db) {
    for (std::size_t s = 0; s < acasx::kNumSecondarySenses; ++s) {
      const auto sense = static_cast<acasx::SecondarySense>(s);
      jobs.push_back({db, sense, config.slab_index(db, sense)});
    }
  }
  std::deque<std::size_t> queue;
  for (std::size_t j = 0; j < jobs.size(); ++j) queue.push_back(j);
  std::vector<bool> done(jobs.size(), false);
  std::size_t completed = 0;

  std::vector<SolveWorker> fleet;
  if (options.num_workers > 1 && jobs.size() > 1) {
    fleet = spawn_solve_fleet(std::min(options.num_workers, jobs.size()), options,
                              MsgType::kJointSolveSetup, stencil_image, report);
  }

  auto assign = [&](SolveWorker& w) {
    if (queue.empty() || !w.proc.alive()) return;
    const std::size_t j = queue.front();
    ByteWriter out;
    out.u64(jobs[j].delta_bin);
    out.u32(static_cast<std::uint32_t>(jobs[j].sense));
    try {
      write_frame(w.proc.in_fd(), MsgType::kJointSlab, out.bytes());
      queue.pop_front();
      w.job = j;
    } catch (const ProtocolError&) {
      w.proc.kill();
      report.degraded = true;
    }
  };
  auto lose = [&](SolveWorker& w) {
    if (w.job.has_value()) {
      queue.push_front(*w.job);
      ++report.requeues;
      w.job.reset();
    }
    w.proc.kill();
    report.degraded = true;
  };

  for (SolveWorker& w : fleet) assign(w);

  while (completed < jobs.size()) {
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (fleet[i].proc.alive() && fleet[i].job.has_value()) {
        fds.push_back({fleet[i].proc.out_fd(), POLLIN, 0});
        fd_slot.push_back(i);
      }
    }
    if (fds.empty()) break;  // nothing in flight: drain the queue in-process

    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      SolveWorker& w = fleet[fd_slot[k]];
      try {
        std::optional<Frame> frame = read_frame(w.proc.out_fd());
        if (!frame.has_value() || frame->type != MsgType::kJointSlabResult) {
          throw ProtocolError("worker lost mid-slab");
        }
        const std::size_t j = w.job.value();
        ByteReader in(frame->payload);
        const std::uint64_t delta_bin = in.u64();
        const std::uint32_t sense_raw = in.u32();
        const std::vector<float> slab = in.array<float>();
        in.expect_end();
        if (delta_bin != jobs[j].delta_bin ||
            sense_raw != static_cast<std::uint32_t>(jobs[j].sense) ||
            slab.size() != slab_floats) {
          throw ProtocolError("slab result shape mismatch");
        }
        std::memcpy(q.subspan(jobs[j].slab * slab_floats, slab_floats).data(), slab.data(),
                    slab_floats * sizeof(float));
        done[j] = true;
        ++completed;
        w.job.reset();
        count_answer(w, report);
        assign(w);
      } catch (const ProtocolError&) {
        lose(w);
      }
    }
  }

  for (SolveWorker& w : fleet) {
    if (w.job.has_value()) lose(w);  // poll-failure exit path
    w.proc.shutdown();
  }

  // In-process drain: same per-slab kernel, bit-identical output.
  while (!queue.empty()) {
    const std::size_t j = queue.front();
    queue.pop_front();
    if (done[j]) continue;
    acasx::solve_joint_slab(config, solver->sense_stencils(jobs[j].sense), jobs[j].delta_bin,
                            jobs[j].sense, nullptr,
                            q.subspan(jobs[j].slab * slab_floats, slab_floats));
    done[j] = true;
    ++completed;
  }
  expect(completed == jobs.size(), "every joint slab solved");

  if (report_out != nullptr) {
    report.wall_s = seconds_since(t0);
    *report_out = report;
  }
  return table;
}

}  // namespace cav::dist
