// Serializable descriptions of validation campaigns, and their wire
// codec (dist/wire.h payload layer).
//
// The in-process campaign API (core/validation_campaign.h) takes CAS
// FACTORIES — closures over shared logic tables — which cannot cross a
// process boundary.  The distributed layer instead ships a CasSpec: the
// system KIND plus the table-image paths it needs, which the worker
// materializes by mmap'ing the same images (serving::TableImage pages are
// shared physical memory across the whole worker fleet).
//
// Every config field crosses the wire explicitly, field by field — no
// struct memcpy — so the codec breaks loudly (decode_* throws
// ProtocolError via the bounds-checked ByteReader) instead of silently
// when a config struct gains a field.  Keep encode/decode pairs in
// lockstep when MonteCarloConfig or its nested structs change.
#pragma once

#include <cstdint>
#include <string>

#include "core/validation_campaign.h"
#include "dist/wire.h"
#include "encounter/statistical_model.h"
#include "sim/cas.h"

namespace cav::dist {

enum class CasKind : std::uint32_t {
  kUnequipped = 0,  ///< nullptr factory: the aircraft just flies its plan
  kTcasLike = 1,    ///< baselines::TcasLikeCas, default config
  kSvo = 2,         ///< baselines::SvoCas, default config
  kAcasXu = 3,      ///< sim::AcasXuCas over mmap'd table image(s)
};

/// Which CAS a campaign participant runs, by value.  For kAcasXu,
/// `pair_image` names an f32 "PAIR" TableImage (LogicTable::open_mapped);
/// a non-empty `joint_image` additionally equips the joint-threat table.
struct CasSpec {
  CasKind kind = CasKind::kUnequipped;
  std::string pair_image;
  std::string joint_image;

  static CasSpec unequipped() { return {}; }
  static CasSpec tcas_like() { return {CasKind::kTcasLike, "", ""}; }
  static CasSpec svo() { return {CasKind::kSvo, "", ""}; }
  static CasSpec acas_xu(std::string pair_image, std::string joint_image = "") {
    return {CasKind::kAcasXu, std::move(pair_image), std::move(joint_image)};
  }
};

/// Build the factory a spec describes (mmap'ing its images).  Throws
/// serving::TableIoError on unreadable/mismatched images.  Returns an
/// empty factory for kUnequipped — the same convention estimate_rates
/// uses for unequipped flight.
sim::CasFactory materialize_cas(const CasSpec& spec);

/// Everything a worker needs to reconstruct a ValidationCampaign.
struct CampaignSpec {
  encounter::StatisticalModelConfig model;
  core::MonteCarloConfig config;
  std::string system_name;
  CasSpec own_cas;
  CasSpec intruder_cas;
};

/// Construct the equivalent in-process campaign (materializing both CAS
/// specs) — used by the worker on kCampaignSetup, and by the driver for
/// its in-process fallback path, so both run the identical kernel.
core::ValidationCampaign materialize_campaign(const CampaignSpec& spec);

void encode_campaign_spec(ByteWriter& out, const CampaignSpec& spec);
CampaignSpec decode_campaign_spec(ByteReader& in);

void encode_stripe(ByteWriter& out, const core::EncounterStripe& stripe);
core::EncounterStripe decode_stripe(ByteReader& in);

void encode_stripe_result(ByteWriter& out, const core::StripeResult& result);
core::StripeResult decode_stripe_result(ByteReader& in);

}  // namespace cav::dist
