// Minimal leveled logger writing to stderr.  The library is quiet by
// default (kWarn); benches and examples raise verbosity explicitly.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace cav {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
inline LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
inline const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace detail

inline void set_log_level(LogLevel level) { detail::log_threshold() = level; }
inline LogLevel log_level() { return detail::log_threshold(); }

inline void log_message(LogLevel level, const std::string& msg) {
  if (level < detail::log_threshold()) return;
  const std::lock_guard<std::mutex> lock(detail::log_mutex());
  std::cerr << '[' << detail::level_name(level) << "] " << msg << '\n';
}

inline void log_debug(const std::string& msg) { log_message(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log_message(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log_message(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log_message(LogLevel::kError, msg); }

}  // namespace cav
