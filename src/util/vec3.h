// Minimal 3-D vector used throughout the simulator.  East-North-Up frame:
// x = east, y = north, z = up (altitude).
#pragma once

#include <cmath>
#include <iosfwd>

namespace cav {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm_sq() const { return dot(*this); }

  /// Length of the horizontal (x, y) projection.
  double horizontal_norm() const { return std::hypot(x, y); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Distance of the horizontal projections only.
inline double horizontal_distance(const Vec3& a, const Vec3& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Absolute altitude difference.
inline double vertical_distance(const Vec3& a, const Vec3& b) {
  return std::abs(a.z - b.z);
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace cav
