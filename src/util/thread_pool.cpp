#include "util/thread_pool.h"

#include <atomic>

namespace cav {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_ranges(std::size_t n,
                                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so that small items do not drown in queue
  // overhead; an atomic cursor keeps the chunks balanced.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = thread_count();
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));
  for (std::size_t w = 0; w < workers; ++w) {
    submit([cursor, n, chunk, &fn] {
      for (;;) {
        const std::size_t begin = cursor->fetch_add(chunk);
        if (begin >= n) return;
        fn(begin, std::min(n, begin + chunk));
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cav
