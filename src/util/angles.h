// Angle helpers.  Bearings follow the paper's convention (Fig. 4): an angle
// theta measured in the horizontal plane, with the horizontal velocity
// decomposed as Vx = Gs*cos(theta), Vy = Gs*sin(theta).
#pragma once

#include <cmath>
#include <numbers>

namespace cav {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to (-pi, pi].
inline double wrap_pi(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;
  return a - kPi;
}

/// Wrap an angle to [0, 2*pi).
inline double wrap_two_pi(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

/// Smallest signed difference a-b, wrapped to (-pi, pi].
inline double angle_diff(double a, double b) { return wrap_pi(a - b); }

}  // namespace cav
