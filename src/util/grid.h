// Uniform grids and multilinear interpolation.
//
// The ACAS X logic table stores costs on a rectangular grid over the
// continuous state variables (relative altitude, vertical rates) and the
// online logic evaluates off-grid states by multilinear interpolation —
// exactly the "sampling and interpolation" machinery the paper lists among
// the new process's challenge sources (§IV).  The same code also spreads
// off-grid *next states* onto grid vertices during offline solving.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace cav {

/// A uniformly spaced axis: points lo, lo+step, ..., hi (count points).
class UniformAxis {
 public:
  UniformAxis() = default;
  UniformAxis(double lo, double hi, std::size_t count) : lo_(lo), hi_(hi), count_(count) {
    if (count < 2) throw std::invalid_argument("UniformAxis needs at least 2 points");
    if (!(hi > lo)) throw std::invalid_argument("UniformAxis needs hi > lo");
    step_ = (hi - lo) / static_cast<double>(count - 1);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double step() const { return step_; }
  std::size_t count() const { return count_; }

  /// Coordinate of grid point i.
  double value(std::size_t i) const { return lo_ + step_ * static_cast<double>(i); }

  /// Index of the nearest grid point to x (clamped to the axis).
  std::size_t nearest(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return count_ - 1;
    return static_cast<std::size_t>((x - lo_) / step_ + 0.5);
  }

  /// Lower bracketing index and fractional position for interpolation.
  /// x outside the axis is clamped to the boundary (fraction 0 or 1).
  struct Bracket {
    std::size_t index;  ///< lower vertex, in [0, count-2]
    double frac;        ///< in [0, 1]
  };
  Bracket bracket(double x) const {
    if (x <= lo_) return {0, 0.0};
    if (x >= hi_) return {count_ - 2, 1.0};
    const double t = (x - lo_) / step_;
    auto i = static_cast<std::size_t>(t);
    if (i > count_ - 2) i = count_ - 2;
    return {i, t - static_cast<double>(i)};
  }

  bool operator==(const UniformAxis&) const = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  double step_ = 1.0;
  std::size_t count_ = 2;
};

/// Weighted grid vertex produced by scattering a continuous point onto a
/// rectangular grid: `flat` is the row-major flat index, `weight` the
/// multilinear weight (all weights for one point sum to 1).
struct GridVertexWeight {
  std::size_t flat;
  double weight;
};

/// An N-dimensional rectangular grid (compile-time rank) supporting flat
/// indexing and multilinear interpolation.
template <std::size_t N>
class GridN {
 public:
  GridN() = default;
  explicit GridN(std::array<UniformAxis, N> axes) : axes_(std::move(axes)) {
    strides_[N - 1] = 1;
    for (std::size_t d = N - 1; d > 0; --d) {
      strides_[d - 1] = strides_[d] * axes_[d].count();
    }
    size_ = strides_[0] * axes_[0].count();
  }

  const UniformAxis& axis(std::size_t d) const { return axes_[d]; }
  std::size_t size() const { return size_; }

  /// Row-major flat index of a vertex.
  std::size_t flat_index(const std::array<std::size_t, N>& idx) const {
    std::size_t f = 0;
    for (std::size_t d = 0; d < N; ++d) f += idx[d] * strides_[d];
    return f;
  }

  /// Inverse of flat_index.
  std::array<std::size_t, N> unflatten(std::size_t flat) const {
    std::array<std::size_t, N> idx{};
    for (std::size_t d = 0; d < N; ++d) {
      idx[d] = flat / strides_[d];
      flat %= strides_[d];
    }
    return idx;
  }

  /// Coordinates of a vertex.
  std::array<double, N> point(const std::array<std::size_t, N>& idx) const {
    std::array<double, N> p{};
    for (std::size_t d = 0; d < N; ++d) p[d] = axes_[d].value(idx[d]);
    return p;
  }

  /// Scatter a continuous point onto the up-to-2^N surrounding vertices
  /// with multilinear weights.  Out-of-range coordinates are clamped, which
  /// matches the table boundary behaviour of the ACAS X reports.
  /// Vertices with zero weight are omitted.
  std::vector<GridVertexWeight> scatter(const std::array<double, N>& x) const {
    std::vector<GridVertexWeight> out(std::size_t{1} << N);
    out.resize(scatter_into(x, out.data()));
    return out;
  }

  /// Allocation-free scatter for hot query paths (serving/kernel.h):
  /// writes the same vertex set as scatter(), in the same order, into
  /// `out` (capacity >= 2^N) and returns the count.
  std::size_t scatter_into(const std::array<double, N>& x, GridVertexWeight* out) const {
    std::array<UniformAxis::Bracket, N> br{};
    for (std::size_t d = 0; d < N; ++d) br[d] = axes_[d].bracket(x[d]);

    std::size_t n = 0;
    for (std::size_t corner = 0; corner < (std::size_t{1} << N); ++corner) {
      double w = 1.0;
      std::size_t flat = 0;
      for (std::size_t d = 0; d < N; ++d) {
        const bool hi = (corner >> d) & 1U;
        w *= hi ? br[d].frac : (1.0 - br[d].frac);
        flat += (br[d].index + (hi ? 1 : 0)) * strides_[d];
      }
      if (w > 0.0) out[n++] = {flat, w};
    }
    return n;
  }

  /// Flat index of the lower-corner cell containing x (clamped) — the
  /// locality key PolicyServer buckets batched queries by.
  std::size_t cell_index(const std::array<double, N>& x) const {
    std::size_t flat = 0;
    for (std::size_t d = 0; d < N; ++d) flat += axes_[d].bracket(x[d]).index * strides_[d];
    return flat;
  }

  /// Multilinear interpolation of `values` (one value per vertex, flat
  /// row-major layout) at a continuous point.
  template <typename ValueContainer>
  double interpolate(const ValueContainer& values, const std::array<double, N>& x) const {
    std::array<UniformAxis::Bracket, N> br{};
    for (std::size_t d = 0; d < N; ++d) br[d] = axes_[d].bracket(x[d]);
    double acc = 0.0;
    for (std::size_t corner = 0; corner < (std::size_t{1} << N); ++corner) {
      double w = 1.0;
      std::size_t flat = 0;
      for (std::size_t d = 0; d < N; ++d) {
        const bool hi = (corner >> d) & 1U;
        w *= hi ? br[d].frac : (1.0 - br[d].frac);
        flat += (br[d].index + (hi ? 1 : 0)) * strides_[d];
      }
      if (w > 0.0) acc += w * static_cast<double>(values[flat]);
    }
    return acc;
  }

 private:
  std::array<UniformAxis, N> axes_{};
  std::array<std::size_t, N> strides_{};
  std::size_t size_ = 0;
};

}  // namespace cav
