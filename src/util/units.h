// Unit conversions between SI (used by the simulator) and the aviation
// units (ft, ft/min, kt) in which the ACAS XU MDP is specified.
//
// Convention: every quantity crossing a module boundary is SI unless the
// identifier says otherwise (e.g. `h_ft`, `vs_fpm`).  These helpers keep
// the conversions explicit and grep-able.
#pragma once

namespace cav::units {

inline constexpr double kFtPerMeter = 3.280839895013123;
inline constexpr double kMeterPerFt = 1.0 / kFtPerMeter;
inline constexpr double kKtPerMps = 1.9438444924406046;
inline constexpr double kMpsPerKt = 1.0 / kKtPerMps;

/// Feet -> meters.
constexpr double ft_to_m(double ft) { return ft * kMeterPerFt; }
/// Meters -> feet.
constexpr double m_to_ft(double m) { return m * kFtPerMeter; }

/// Feet-per-minute -> meters-per-second.
constexpr double fpm_to_mps(double fpm) { return fpm * kMeterPerFt / 60.0; }
/// Meters-per-second -> feet-per-minute.
constexpr double mps_to_fpm(double mps) { return mps * kFtPerMeter * 60.0; }

/// Knots -> meters-per-second.
constexpr double kt_to_mps(double kt) { return kt * kMpsPerKt; }
/// Meters-per-second -> knots.
constexpr double mps_to_kt(double mps) { return mps * kKtPerMps; }

/// Standard gravitational acceleration, m/s^2 (used for maneuver-strength
/// specifications such as "g/4 vertical acceleration").
inline constexpr double kGravity = 9.80665;
/// Same in ft/s^2 — the ACAS X reports express accelerations this way.
inline constexpr double kGravityFtS2 = kGravity * kFtPerMeter;

}  // namespace cav::units
