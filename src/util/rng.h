// Deterministic random-number streams.
//
// Every stochastic component in the library draws from an RngStream that is
// derived from (master seed, purpose string, indices...).  Deriving rather
// than sharing engines guarantees that (a) runs are reproducible from one
// seed, and (b) evaluating individuals in parallel yields bit-identical
// results to a serial evaluation, because no stream order depends on thread
// scheduling.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace cav {

/// 64-bit mix (splitmix64 finalizer).  Used to spread structured seed
/// material (seed, indices) into well-distributed engine seeds.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string, for turning purpose tags into seed material.
constexpr std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A self-contained random stream.  Thin wrapper over std::mt19937_64 with
/// convenience draws; cheap to construct, so make one per (purpose, index).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(mix64(seed)) {}

  /// Derive an independent stream: hash the parent seed material with a
  /// purpose tag and up to two indices.
  static RngStream derive(std::uint64_t master, std::string_view purpose,
                          std::uint64_t i = 0, std::uint64_t j = 0) {
    std::uint64_t s = mix64(master ^ hash_string(purpose));
    s = mix64(s ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    s = mix64(s ^ (0xc2b2ae3d27d4eb4fULL * (j + 1)));
    return RngStream(s);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Sample an index from a discrete distribution given by weights.
  /// Weights need not be normalized; at least one must be positive.
  template <typename Container>
  int discrete(const Container& weights) {
    std::discrete_distribution<int> d(std::begin(weights), std::end(weights));
    return d(engine_);
  }

  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cav
