// Precondition / invariant checking in the spirit of the Core Guidelines'
// Expects()/Ensures(): violations throw std::logic_error with a location
// string so tests can assert on contract enforcement.  Hot inner loops use
// plain assert() instead; these checks guard public API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace cav {

/// Thrown when a public-API precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Check a precondition; `what` should name the requirement, e.g.
/// "population_size > 0".
inline void expect(bool condition, const char* what) {
  if (!condition) throw ContractViolation(std::string("precondition failed: ") + what);
}

/// Check a postcondition / invariant.
inline void ensure(bool condition, const char* what) {
  if (!condition) throw ContractViolation(std::string("invariant violated: ") + what);
}

}  // namespace cav
