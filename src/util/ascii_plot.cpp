#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace cav {
namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range finite_range(const std::vector<double>& v) {
  Range r{std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};
  for (const double x : v) {
    if (!std::isfinite(x)) continue;
    r.lo = std::min(r.lo, x);
    r.hi = std::max(r.hi, x);
  }
  if (r.lo > r.hi) return {0.0, 1.0};
  if (r.lo == r.hi) return {r.lo - 0.5, r.hi + 0.5};
  return r;
}

std::string render(const std::vector<std::vector<double>>& xs,
                   const std::vector<std::vector<double>>& ys, const std::string& marks,
                   const AsciiPlotOptions& opts) {
  const int w = std::max(8, opts.width);
  const int h = std::max(4, opts.height);

  std::vector<double> all_x;
  std::vector<double> all_y;
  for (const auto& s : xs) all_x.insert(all_x.end(), s.begin(), s.end());
  for (const auto& s : ys) all_y.insert(all_y.end(), s.begin(), s.end());
  const Range rx = finite_range(all_x);
  const Range ry = finite_range(all_y);

  std::vector<std::string> canvas(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t s = 0; s < ys.size(); ++s) {
    const char mark = marks.empty() ? '*' : marks[s % marks.size()];
    for (std::size_t i = 0; i < ys[s].size(); ++i) {
      const double xv = xs[s][i];
      const double yv = ys[s][i];
      if (!std::isfinite(xv) || !std::isfinite(yv)) continue;
      const int col = static_cast<int>(std::lround((xv - rx.lo) / (rx.hi - rx.lo) * (w - 1)));
      const int row = static_cast<int>(std::lround((yv - ry.lo) / (ry.hi - ry.lo) * (h - 1)));
      const int r = h - 1 - std::clamp(row, 0, h - 1);
      const int c = std::clamp(col, 0, w - 1);
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = mark;
    }
  }

  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  out << "  " << ry.hi;
  if (!opts.y_label.empty()) out << "  (" << opts.y_label << ')';
  out << '\n';
  for (const auto& line : canvas) out << "  |" << line << '\n';
  out << "  +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  out << "  " << ry.lo << "    x: [" << rx.lo << ", " << rx.hi << ']';
  if (!opts.x_label.empty()) out << "  (" << opts.x_label << ')';
  out << '\n';
  return out.str();
}

}  // namespace

std::string ascii_plot(const std::vector<double>& y, const AsciiPlotOptions& opts) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[i] = static_cast<double>(i);
  return render({x}, {y}, std::string(1, opts.mark), opts);
}

std::string ascii_plot_xy(const std::vector<double>& x, const std::vector<double>& y,
                          const AsciiPlotOptions& opts) {
  const std::size_t n = std::min(x.size(), y.size());
  return render({std::vector<double>(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n))},
                {std::vector<double>(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n))},
                std::string(1, opts.mark), opts);
}

std::string ascii_plot_multi(const std::vector<std::vector<double>>& series,
                             const std::string& marks, const AsciiPlotOptions& opts) {
  std::vector<std::vector<double>> xs;
  xs.reserve(series.size());
  for (const auto& s : series) {
    std::vector<double> x(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) x[i] = static_cast<double>(i);
    xs.push_back(std::move(x));
  }
  return render(xs, series, marks, opts);
}

std::string ascii_heatmap(const std::vector<double>& values, int rows, int cols,
                          const std::string& title) {
  static const std::string ramp = " .:-=+*#%@";
  const Range r = finite_range(values);
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  for (int i = 0; i < rows; ++i) {
    out << "  ";
    for (int j = 0; j < cols; ++j) {
      const double v = values[static_cast<std::size_t>(i * cols + j)];
      double t = (r.hi > r.lo) ? (v - r.lo) / (r.hi - r.lo) : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const auto k = static_cast<std::size_t>(t * static_cast<double>(ramp.size() - 1));
      out << ramp[k];
    }
    out << '\n';
  }
  out << "  scale: [" << r.lo << " = ' ', " << r.hi << " = '@']\n";
  return out.str();
}

}  // namespace cav
