// Tiny CSV writer for experiment artifacts (fitness series, trajectories,
// Monte-Carlo tables).  Deliberately minimal: numeric and string cells,
// RFC-4180-style quoting for strings that need it.
#pragma once

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cav {

class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  /// Doubles are written with max_digits10 precision so files round-trip
  /// losslessly.
  explicit CsvWriter(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    out_.precision(std::numeric_limits<double>::max_digits10);
  }

  /// Start a row from a list of header names.
  void header(const std::vector<std::string>& names) {
    for (const auto& n : names) cell(n);
    end_row();
  }

  CsvWriter& cell(double v) {
    sep();
    out_ << v;
    return *this;
  }
  CsvWriter& cell(std::size_t v) {
    sep();
    out_ << v;
    return *this;
  }
  CsvWriter& cell(int v) {
    sep();
    out_ << v;
    return *this;
  }
  CsvWriter& cell(std::string_view s) {
    sep();
    out_ << quote(s);
    return *this;
  }

  void end_row() {
    out_ << '\n';
    first_in_row_ = true;
  }

  void flush() { out_.flush(); }

 private:
  void sep() {
    if (!first_in_row_) out_ << ',';
    first_in_row_ = false;
  }

  static std::string quote(std::string_view s) {
    const bool needs = s.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs) return std::string(s);
    std::ostringstream q;
    q << '"';
    for (const char c : s) {
      if (c == '"') q << "\"\"";
      else q << c;
    }
    q << '"';
    return q.str();
  }

  std::ofstream out_;
  bool first_in_row_ = true;
};

}  // namespace cav
