// ASCII rendering of series and heatmaps.
//
// The paper's tool has a MASON GUI ("visualization mode"); this library is
// headless, so benches and examples render fitness curves (Fig. 6) and
// encounter trajectories (Figs. 5/7/8) as terminal plots plus CSV dumps.
#pragma once

#include <string>
#include <vector>

namespace cav {

struct AsciiPlotOptions {
  int width = 72;        ///< plot columns
  int height = 16;       ///< plot rows
  char mark = '*';       ///< glyph for data points
  std::string title;     ///< optional title line
  std::string x_label;   ///< optional x-axis caption
  std::string y_label;   ///< printed next to the y range
};

/// Scatter/line plot of y against index (x = 0..n-1).
std::string ascii_plot(const std::vector<double>& y, const AsciiPlotOptions& opts = {});

/// Scatter plot of (x, y) pairs.
std::string ascii_plot_xy(const std::vector<double>& x, const std::vector<double>& y,
                          const AsciiPlotOptions& opts = {});

/// Multi-series overlay; series i uses marks[i % marks.size()].
std::string ascii_plot_multi(const std::vector<std::vector<double>>& series,
                             const std::string& marks, const AsciiPlotOptions& opts = {});

/// Render a matrix (row-major, rows x cols) as a shaded heatmap using a
/// density ramp.  Used by the policy inspector for logic-table slices.
std::string ascii_heatmap(const std::vector<double>& values, int rows, int cols,
                          const std::string& title = "");

}  // namespace cav
