// Small statistics helpers used by the Monte-Carlo harness and the GA
// telemetry: streaming mean/variance, min/max, and Wilson score intervals
// for event-rate estimates (accident rate, alert rate).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace cav {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : std::numeric_limits<double>::quiet_NaN(); }
  double max() const { return n_ ? max_ : std::numeric_limits<double>::quiet_NaN(); }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double sem() const { return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for a binomial proportion (successes/trials).
/// z defaults to the 95% normal quantile.  Preferred over the normal
/// approximation because our event rates (mid-air collisions) are rare.
inline Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.959964) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  // At 0 (or n) successes the exact bound IS the point estimate, but
  // center and half travel different FP expression paths and their
  // difference can be a ~1e-17 residue.  Downstream tests of "is the
  // bound zero" (risk_ratio_wilson's unbounded-above case) need exactness.
  const double lo = successes == 0 ? 0.0 : std::max(0.0, center - half);
  const double hi = successes == trials ? 1.0 : std::min(1.0, center + half);
  return {lo, hi};
}

/// Arithmetic mean of a vector; NaN when empty.
inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Percentile by linear interpolation between order statistics; q in [0,1].
inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace cav
