// Fixed-size thread pool with a parallel-for helper.
//
// Used to evaluate GA individuals (each = many stochastic simulations) in
// parallel.  Determinism note: callers must derive an independent RngStream
// per work item (see rng.h); the pool itself imposes no ordering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cav {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw (call sites wrap their own
  /// error handling); an escaping exception terminates, by design.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// fn is invoked concurrently; it must synchronize its own shared state.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Range-based variant: fn(begin, end) is called once per contiguous
  /// chunk of [0, n), so hot loops pay one std::function dispatch per chunk
  /// instead of per index, and callers can keep per-chunk partial results
  /// (combined after the call) instead of synchronizing per item.
  void parallel_for_ranges(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace cav
