// The paper's fitness function (§VII):
//
//   fitness = (1/100) * sum_{k=1..100}  10000 / (1 + d_k)
//
// where d_k is the minimum distance between the two UAVs in the k-th
// stochastic simulation run (0 when a mid-air collision happens, giving the
// run the maximum gain of 10000 — "10000 was chosen because in the MDP
// model 10000 was assigned to mid-air collision states").  The worse the
// avoidance system behaves in an encounter, the higher the encounter's
// fitness.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "encounter/encounter.h"
#include "encounter/multi_encounter.h"
#include "sim/cas.h"
#include "sim/simulation.h"

namespace cav::core {

struct FitnessConfig {
  std::size_t runs_per_encounter = 100;  ///< paper: "running 100 simulations"
  double gain_max = 10000.0;             ///< footnote 6
  /// max_time_s is overridden per encounter.  Set sim.threat_policy to
  /// kCostFused (or kJointTable, with joint-table-equipped CAS factories)
  /// to point the GA search at a multi-threat arbitration policy — the
  /// evaluators pass this config through to every simulation.  sim.fault
  /// and sim.coordination inject degraded-mode conditions, so the GA can
  /// breed worst cases against a policy under bursty comms or sensor
  /// outages (see also search_degraded_multi_scenarios, which puts the
  /// fault knobs themselves on the genome).
  sim::SimConfig sim;
  double sim_time_margin_s = 45.0;       ///< simulate until t_cpa + margin
  std::uint64_t seed = 1234;             ///< master seed for all runs

  /// Mixed-fleet knobs, mirroring MonteCarloConfig: per-agent fault
  /// profiles override sim.fault when set; equipage_fraction < 1 leaves
  /// some intruders without the intruder CAS (the draw is deterministic
  /// in (seed, stream_id, run, intruder), so fitness stays reproducible).
  std::optional<sim::FaultProfile> own_fault;
  std::optional<sim::FaultProfile> intruder_fault;
  double equipage_fraction = 1.0;
};

/// Everything a fitness evaluation learns about one encounter.
struct EncounterEvaluation {
  double fitness = 0.0;
  std::size_t runs = 0;
  std::size_t nmac_count = 0;        ///< mid-air collisions across the runs
  double mean_miss_m = 0.0;          ///< mean of d_k
  double min_miss_m = 0.0;           ///< best (smallest) d_k seen
  double alert_fraction_own = 0.0;   ///< runs where the own-ship ever alerted
  /// Summed SimResult::wall_time_s across the runs — what this encounter
  /// cost to evaluate.  Host timing, not deterministic.
  double wall_s = 0.0;

  double nmac_rate() const {
    return runs ? static_cast<double>(nmac_count) / static_cast<double>(runs) : 0.0;
  }
};

/// One run's raw outcome — the canonical work-unit cell of the fitness
/// surface, mirroring core::ValidationCampaign's per-cell partials
/// (validation_campaign.h).  Evaluations are reconstructed from per-run
/// outcomes in run order, so any partition of the run range into stripes
/// merges bit-identically to the flat loop.
struct FitnessRunOutcome {
  double miss_m = 0.0;   ///< d_k: 0 on NMAC, else min separation
  bool nmac = false;     ///< (own-ship NMAC for the multi evaluator)
  bool own_alert = false;
  double wall_s = 0.0;   ///< host timing; not deterministic
};

/// Evaluates encounters by repeated stochastic simulation.  Thread-safe:
/// evaluate() is const and every run derives its own RNG streams from
/// (seed, stream_id, run_index).
class EncounterEvaluator {
 public:
  EncounterEvaluator(FitnessConfig config, sim::CasFactory own_cas, sim::CasFactory intruder_cas);

  /// `stream_id` distinguishes evaluations (the GA passes its evaluation
  /// index); identical (params, stream_id) give identical results.
  /// Equivalent to merge(evaluate_runs(params, stream_id, 0, runs)) —
  /// the single-stripe form of the work-unit surface below.
  EncounterEvaluation evaluate(const encounter::EncounterParams& params,
                               std::uint64_t stream_id) const;

  /// Work-unit surface: evaluate runs [begin, end) of this encounter (a
  /// fitness stripe).  Each run's outcome depends only on (seed,
  /// stream_id, run index), so stripes are placement-independent.
  std::vector<FitnessRunOutcome> evaluate_runs(const encounter::EncounterParams& params,
                                               std::uint64_t stream_id, std::size_t begin,
                                               std::size_t end) const;

  /// Merge per-run outcomes (concatenated in run order, covering all
  /// config().runs_per_encounter runs) into the evaluation.  The
  /// accumulation walks runs in order — bit-identical to the flat
  /// evaluate() loop for any striping.
  EncounterEvaluation merge(std::span<const FitnessRunOutcome> outcomes) const;

  /// One fully instrumented run (trajectory recorded) for inspection.
  sim::SimResult run_once(const encounter::EncounterParams& params, std::uint64_t stream_id,
                          std::size_t run_index, bool record_trajectory) const;

  const FitnessConfig& config() const { return config_; }

 private:
  FitnessConfig config_;
  sim::CasFactory own_cas_;
  sim::CasFactory intruder_cas_;
};

/// Multi-intruder fitness evaluation: the same paper fitness, with d_k the
/// own-ship-centric miss distance (0 when any pair involving the own-ship
/// reaches an NMAC, otherwise the minimum own-ship separation).
struct MultiEncounterEvaluation {
  double fitness = 0.0;
  std::size_t runs = 0;
  std::size_t own_nmac_count = 0;    ///< runs with an own-ship NMAC
  double mean_miss_m = 0.0;          ///< mean of d_k
  double min_miss_m = 0.0;           ///< best (smallest) d_k seen
  double alert_fraction_own = 0.0;   ///< runs where the own-ship ever alerted
  /// Summed SimResult::wall_time_s across the runs — what this encounter
  /// cost to evaluate.  Host timing, not deterministic.
  double wall_s = 0.0;

  double nmac_rate() const {
    return runs ? static_cast<double>(own_nmac_count) / static_cast<double>(runs) : 0.0;
  }
};

/// Evaluates K-intruder encounters by repeated stochastic simulation of the
/// N-aircraft engine.  Thread-safe exactly like EncounterEvaluator: every
/// run derives its own RNG streams from (seed, stream_id, run_index).
class MultiEncounterEvaluator {
 public:
  MultiEncounterEvaluator(FitnessConfig config, sim::CasFactory own_cas,
                          sim::CasFactory intruder_cas);

  /// Equivalent to merge(evaluate_runs(params, stream_id, 0, runs)).
  MultiEncounterEvaluation evaluate(const encounter::MultiEncounterParams& params,
                                    std::uint64_t stream_id) const;

  /// Work-unit surface, mirroring EncounterEvaluator: per-run outcomes
  /// for runs [begin, end), and the order-preserving merge.
  std::vector<FitnessRunOutcome> evaluate_runs(const encounter::MultiEncounterParams& params,
                                               std::uint64_t stream_id, std::size_t begin,
                                               std::size_t end) const;
  MultiEncounterEvaluation merge(std::span<const FitnessRunOutcome> outcomes) const;

  /// One fully instrumented run (trajectory recorded) for inspection.
  sim::SimResult run_once(const encounter::MultiEncounterParams& params,
                          std::uint64_t stream_id, std::size_t run_index,
                          bool record_trajectory) const;

  const FitnessConfig& config() const { return config_; }

 private:
  FitnessConfig config_;
  sim::CasFactory own_cas_;
  sim::CasFactory intruder_cas_;
};

}  // namespace cav::core
