#include "core/model_revision.h"

#include "mdp/value_iteration.h"
#include "toy2d/toy2d_sim.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {

Toy2dRevisionLoop::Toy2dRevisionLoop(const toy2d::Config& base, std::size_t episodes_per_start,
                                     std::uint64_t seed)
    : base_(base),
      base_model_(base),
      compiled_(base_model_),
      episodes_per_start_(episodes_per_start),
      seed_(seed) {
  expect(episodes_per_start_ > 0, "revision evaluation needs at least one episode");
}

Toy2dRevisionReport Toy2dRevisionLoop::evaluate(const Toy2dCostRevision& revision,
                                                ThreadPool* pool) {
  // The revision only rewrites the preference weights; grid sizes and the
  // stochastics stay the base's, so the compiled transition structure is
  // still a faithful flattening and refresh_costs suffices.
  toy2d::Config revised_config = base_;
  revised_config.collision_cost = revision.collision_cost;
  revised_config.maneuver_cost = revision.maneuver_cost;
  revised_config.level_reward = revision.level_reward;
  const toy2d::Toy2dMdp revised(revised_config);

  compiled_.refresh_costs(revised);
  mdp::ValueIterationConfig vi;
  vi.pool = pool;
  auto solved = mdp::solve_value_iteration(compiled_, vi);
  ensure(solved.converged, "revised value iteration converged");

  Toy2dRevisionReport report;
  report.solver_iterations = solved.iterations;

  // Closed-loop evaluation: roll the revised policy out of every encounter
  // start (intruder entering at x_max, own-ship level at 0) under the BASE
  // cost weights, so revisions are scored on a fixed yardstick.
  const toy2d::PolicyTable table(base_model_, solved.policy, solved.values);
  const toy2d::TablePolicy controller(table);
  double maneuver_sum = 0.0;
  double base_cost_sum = 0.0;
  for (int y_int = -base_.y_max; y_int <= base_.y_max; ++y_int) {
    const toy2d::GridState start{0, base_.x_max, y_int};
    for (std::size_t k = 0; k < episodes_per_start_; ++k) {
      RngStream rng = RngStream::derive(seed_, "revision-eval",
                                        static_cast<std::uint64_t>(y_int + base_.y_max), k);
      const toy2d::Rollout r = toy2d::rollout(base_model_, controller, start, rng);
      ++report.episodes;
      if (r.collided) ++report.collisions;
      maneuver_sum += r.maneuver_steps;
      base_cost_sum += r.total_cost;
    }
  }
  report.collision_rate =
      static_cast<double>(report.collisions) / static_cast<double>(report.episodes);
  report.mean_maneuver_steps = maneuver_sum / static_cast<double>(report.episodes);
  report.mean_base_cost = base_cost_sum / static_cast<double>(report.episodes);
  report.policy = std::move(solved.policy);
  report.values = std::move(solved.values);
  ++revisions_evaluated_;
  return report;
}

}  // namespace cav::core
