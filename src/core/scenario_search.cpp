#include "core/scenario_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/expect.h"

namespace cav::core {
namespace {

/// Fixed stream id used to re-evaluate reported top scenarios, so entries
/// from different searches are comparable.
constexpr std::uint64_t kReportStreamId = 0xF00D;

/// Two genomes are "the same finding" when every gene is within 5% of its
/// bound width of the other; keeps the reported top lists diverse.
bool similar_genome(const ga::Genome& a, const ga::Genome& b, const ga::GenomeSpec& spec) {
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const double scale = spec.bound(i).width();
    if (scale > 0.0 && std::abs(a[i] - b[i]) > 0.05 * scale) return false;
  }
  return true;
}

/// Rank the final population plus the all-time best, deduplicate in the
/// normalized genome space, and build one Found entry per survivor (the
/// caller decodes the genome and re-evaluates on kReportStreamId).  Shared
/// by the pairwise and multi-intruder searches so the ranking, similarity
/// threshold, and reporting stream cannot drift apart.
template <typename Found, typename MakeFound>
std::vector<Found> collect_top_genomes(const ga::SearchResult& ga_result,
                                       const ga::GenomeSpec& spec, std::size_t keep_top,
                                       const MakeFound& make_found) {
  std::vector<ga::Individual> candidates = ga_result.final_population;
  candidates.push_back(ga_result.best);
  std::sort(candidates.begin(), candidates.end(),
            [](const ga::Individual& a, const ga::Individual& b) { return a.fitness > b.fitness; });

  std::vector<Found> top;
  std::vector<ga::Genome> kept;
  for (const auto& ind : candidates) {
    if (top.size() >= keep_top) break;
    const bool duplicate = std::any_of(kept.begin(), kept.end(), [&](const ga::Genome& g) {
      return similar_genome(g, ind.genome, spec);
    });
    if (duplicate) continue;
    kept.push_back(ind.genome);
    top.push_back(make_found(ind));
  }
  return top;
}

std::vector<FoundScenario> collect_top(const ga::SearchResult& ga_result,
                                       const ScenarioSearchConfig& config,
                                       const EncounterEvaluator& evaluator) {
  const ga::GenomeSpec spec = make_genome_spec(config.ranges);
  return collect_top_genomes<FoundScenario>(
      ga_result, spec, config.keep_top, [&](const ga::Individual& ind) {
        std::array<double, encounter::kNumParams> a{};
        std::copy_n(ind.genome.begin(), encounter::kNumParams, a.begin());
        FoundScenario found;
        found.params = encounter::EncounterParams::from_array(a);
        found.fitness = ind.fitness;
        found.detail = evaluator.evaluate(found.params, kReportStreamId);
        return found;
      });
}

/// Search-level preconditions, checked before any budget arithmetic: an
/// all-elite population makes the per-generation evaluation count zero,
/// which would turn ga_budget into a lie and generation_of into a
/// divide-by-zero.
void expect_valid_ga(const ga::GaConfig& config) {
  expect(config.population_size >= 2, "population_size >= 2");
  expect(config.generations >= 1, "generations >= 1");
  expect(config.elites < config.population_size, "elites < population_size");
}

/// Evaluation budget of the configured GA (gen 0 evaluates the full
/// population; later generations re-evaluate everything but the elites).
std::size_t ga_budget(const ga::GaConfig& config) {
  return config.population_size +
         (config.generations - 1) * (config.population_size - config.elites);
}

/// Generation a given global evaluation index belongs to.
std::size_t generation_of(std::size_t eval_index, const ga::GaConfig& config) {
  if (eval_index < config.population_size) return 0;
  const std::size_t per_gen = config.population_size - config.elites;
  if (per_gen == 0) return 0;  // degenerate config; see expect_valid_ga
  return 1 + (eval_index - config.population_size) / per_gen;
}

/// Fitness function that also records one LogEntry per evaluation.  The
/// log slots are pre-sized and indexed by the (unique, deterministic)
/// evaluation index, so parallel workers never contend.
ga::FitnessFunction make_fitness(const EncounterEvaluator& evaluator,
                                 std::vector<LogEntry>* log, const ga::GaConfig& ga_config) {
  return [&evaluator, log, ga_config](const ga::Genome& genome, std::uint64_t eval_index) {
    std::array<double, encounter::kNumParams> a{};
    std::copy_n(genome.begin(), encounter::kNumParams, a.begin());
    const auto params = encounter::EncounterParams::from_array(a);
    const EncounterEvaluation eval = evaluator.evaluate(params, eval_index);
    if (log != nullptr && eval_index < log->size()) {
      LogEntry& entry = (*log)[eval_index];
      entry.evaluation_index = eval_index;
      entry.generation = generation_of(eval_index, ga_config);
      entry.params = params;
      entry.fitness = eval.fitness;
      entry.nmac_rate = eval.nmac_rate();
      entry.alert_fraction = eval.alert_fraction_own;
      entry.eval_wall_s = eval.wall_s;
    }
    return eval.fitness;
  };
}

}  // namespace

ga::GenomeSpec make_genome_spec(const encounter::ParamRanges& ranges) {
  std::vector<ga::GeneBounds> bounds(encounter::kNumParams);
  for (std::size_t i = 0; i < encounter::kNumParams; ++i) {
    bounds[i] = {ranges.lo[i], ranges.hi[i]};
  }
  return ga::GenomeSpec(std::move(bounds));
}

ga::GenomeSpec make_multi_genome_spec(const encounter::ParamRanges& ranges,
                                      std::size_t intruders) {
  std::vector<double> lo;
  std::vector<double> hi;
  encounter::multi_param_bounds(ranges, intruders, &lo, &hi);
  std::vector<ga::GeneBounds> bounds(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) bounds[i] = {lo[i], hi[i]};
  return ga::GenomeSpec(std::move(bounds));
}

ScenarioSearchResult search_challenging_scenarios(const ScenarioSearchConfig& config,
                                                  const sim::CasFactory& own_cas,
                                                  const sim::CasFactory& intruder_cas,
                                                  ThreadPool* pool,
                                                  const ga::GenerationCallback& on_generation) {
  expect_valid_ga(config.ga);
  const auto t0 = std::chrono::steady_clock::now();
  const EncounterEvaluator evaluator(config.fitness, own_cas, intruder_cas);
  const ga::GenomeSpec spec = make_genome_spec(config.ranges);

  ScenarioSearchResult result;
  std::vector<LogEntry> log(ga_budget(config.ga));
  result.ga =
      ga::run_ga(spec, make_fitness(evaluator, &log, config.ga), config.ga, pool, on_generation);
  log.resize(result.ga.total_evaluations);
  result.logbook = Logbook(std::move(log));
  result.top = collect_top(result.ga, config, evaluator);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

ScenarioSearchResult random_search_scenarios(const ScenarioSearchConfig& config,
                                             const sim::CasFactory& own_cas,
                                             const sim::CasFactory& intruder_cas,
                                             ThreadPool* pool) {
  expect_valid_ga(config.ga);
  const auto t0 = std::chrono::steady_clock::now();
  const EncounterEvaluator evaluator(config.fitness, own_cas, intruder_cas);
  const ga::GenomeSpec spec = make_genome_spec(config.ranges);
  const std::size_t budget = config.ga.population_size * config.ga.generations;

  ScenarioSearchResult result;
  std::vector<LogEntry> log(budget);
  ga::GaConfig log_config = config.ga;  // generation_of() maps everything to gen 0
  log_config.population_size = budget;
  result.ga = ga::run_random_search(spec, make_fitness(evaluator, &log, log_config), budget,
                                    config.ga.seed, pool);
  log.resize(result.ga.total_evaluations);
  result.logbook = Logbook(std::move(log));
  result.top = collect_top(result.ga, config, evaluator);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

void DegradedConditions::apply(sim::SimConfig* sim) const {
  sim->coordination.message_loss_prob = message_loss_prob;
  sim->coordination.burst_enter_prob = burst_enter_prob;
  if (blackout_duration_s > 0.0) {
    sim->fault.comms_blackouts.push_back(
        {blackout_start_s, blackout_start_s + blackout_duration_s});
  }
  sim->fault.adsb_dropout_burst_prob = adsb_dropout_burst_prob;
  if (adsb_dropout_burst_prob > 0.0) {
    sim->fault.adsb_burst_continue_prob = kBurstContinueProb;
  }
}

std::vector<double> DegradedConditions::to_vector() const {
  return {message_loss_prob, burst_enter_prob, blackout_start_s, blackout_duration_s,
          adsb_dropout_burst_prob};
}

DegradedConditions DegradedConditions::from_genome_tail(const std::vector<double>& genome) {
  expect(genome.size() >= kNumGenes, "degraded genome carries the fault genes");
  const std::size_t base = genome.size() - kNumGenes;
  DegradedConditions c;
  c.message_loss_prob = genome[base + 0];
  c.burst_enter_prob = genome[base + 1];
  c.blackout_start_s = genome[base + 2];
  c.blackout_duration_s = genome[base + 3];
  c.adsb_dropout_burst_prob = genome[base + 4];
  return c;
}

ga::GenomeSpec make_degraded_genome_spec(const encounter::ParamRanges& ranges,
                                         std::size_t intruders,
                                         const DegradedGeneRanges& fault_ranges) {
  std::vector<double> lo;
  std::vector<double> hi;
  encounter::multi_param_bounds(ranges, intruders, &lo, &hi);
  std::vector<ga::GeneBounds> bounds(lo.size() + DegradedConditions::kNumGenes);
  for (std::size_t i = 0; i < lo.size(); ++i) bounds[i] = {lo[i], hi[i]};
  bounds[lo.size() + 0] = {0.0, fault_ranges.message_loss_hi};
  bounds[lo.size() + 1] = {0.0, fault_ranges.burst_enter_hi};
  bounds[lo.size() + 2] = {0.0, fault_ranges.blackout_start_hi};
  bounds[lo.size() + 3] = {0.0, fault_ranges.blackout_duration_hi};
  bounds[lo.size() + 4] = {0.0, fault_ranges.dropout_burst_hi};
  return ga::GenomeSpec(std::move(bounds));
}

DegradedSearchResult search_degraded_multi_scenarios(
    const MultiScenarioSearchConfig& config, const DegradedGeneRanges& fault_ranges,
    const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas, ThreadPool* pool,
    const ga::GenerationCallback& on_generation) {
  expect_valid_ga(config.ga);
  expect(config.intruders >= 1, "intruders >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  const ga::GenomeSpec spec =
      make_degraded_genome_spec(config.ranges, config.intruders, fault_ranges);

  const std::size_t geometry_genes = spec.size() - DegradedConditions::kNumGenes;

  // The fault genes change the SimConfig, which is baked into the
  // evaluator, so each evaluation builds a fresh evaluator around the
  // decoded conditions (construction is two std::function copies and a
  // config copy — noise next to the 100 simulations it then runs).
  const auto evaluate_genome = [&](const ga::Genome& genome, std::uint64_t stream_id) {
    const std::vector<double> geometry(genome.begin(),
                                       genome.begin() + static_cast<long>(geometry_genes));
    const auto params = encounter::MultiEncounterParams::from_vector(geometry);
    const DegradedConditions conditions = DegradedConditions::from_genome_tail(genome);
    FitnessConfig fitness_config = config.fitness;
    conditions.apply(&fitness_config.sim);
    const MultiEncounterEvaluator evaluator(fitness_config, own_cas, intruder_cas);
    return evaluator.evaluate(params, stream_id);
  };

  const ga::FitnessFunction fitness = [&](const ga::Genome& genome, std::uint64_t eval_index) {
    return evaluate_genome(genome, eval_index).fitness;
  };

  DegradedSearchResult result;
  result.ga = ga::run_ga(spec, fitness, config.ga, pool, on_generation);
  result.top = collect_top_genomes<FoundDegradedScenario>(
      result.ga, spec, config.keep_top, [&](const ga::Individual& ind) {
        FoundDegradedScenario found;
        const std::vector<double> geometry(
            ind.genome.begin(), ind.genome.begin() + static_cast<long>(geometry_genes));
        found.params = encounter::MultiEncounterParams::from_vector(geometry);
        found.faults = DegradedConditions::from_genome_tail(ind.genome);
        found.fitness = ind.fitness;
        found.detail = evaluate_genome(ind.genome, kReportStreamId);
        return found;
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

MultiScenarioSearchResult search_challenging_multi_scenarios(
    const MultiScenarioSearchConfig& config, const sim::CasFactory& own_cas,
    const sim::CasFactory& intruder_cas, ThreadPool* pool,
    const ga::GenerationCallback& on_generation) {
  expect_valid_ga(config.ga);
  expect(config.intruders >= 1, "intruders >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  const MultiEncounterEvaluator evaluator(config.fitness, own_cas, intruder_cas);
  const ga::GenomeSpec spec = make_multi_genome_spec(config.ranges, config.intruders);

  const ga::FitnessFunction fitness = [&evaluator](const ga::Genome& genome,
                                                   std::uint64_t eval_index) {
    const auto params = encounter::MultiEncounterParams::from_vector(genome);
    return evaluator.evaluate(params, eval_index).fitness;
  };

  MultiScenarioSearchResult result;
  result.ga = ga::run_ga(spec, fitness, config.ga, pool, on_generation);
  result.top = collect_top_genomes<FoundMultiScenario>(
      result.ga, spec, config.keep_top, [&](const ga::Individual& ind) {
        FoundMultiScenario found;
        found.params = encounter::MultiEncounterParams::from_vector(ind.genome);
        found.fitness = ind.fitness;
        found.detail = evaluator.evaluate(found.params, kReportStreamId);
        return found;
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace cav::core
