#include "core/scenario_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/expect.h"

namespace cav::core {
namespace {

/// Two scenarios are "the same finding" when every parameter is within 5%
/// of its range of the other; keeps the reported top list diverse.
bool similar(const encounter::EncounterParams& a, const encounter::EncounterParams& b,
             const encounter::ParamRanges& ranges) {
  const auto xa = a.to_array();
  const auto xb = b.to_array();
  for (std::size_t i = 0; i < encounter::kNumParams; ++i) {
    const double scale = ranges.hi[i] - ranges.lo[i];
    if (std::abs(xa[i] - xb[i]) > 0.05 * scale) return false;
  }
  return true;
}

std::vector<FoundScenario> collect_top(const ga::SearchResult& ga_result,
                                       const ScenarioSearchConfig& config,
                                       const EncounterEvaluator& evaluator) {
  // Rank the final population plus the all-time best, deduplicate, and
  // re-evaluate the survivors on a fixed stream for comparable reporting.
  std::vector<ga::Individual> candidates = ga_result.final_population;
  candidates.push_back(ga_result.best);
  std::sort(candidates.begin(), candidates.end(),
            [](const ga::Individual& a, const ga::Individual& b) { return a.fitness > b.fitness; });

  std::vector<FoundScenario> top;
  for (const auto& ind : candidates) {
    if (top.size() >= config.keep_top) break;
    const auto params = encounter::EncounterParams::from_array(
        [&] {
          std::array<double, encounter::kNumParams> a{};
          std::copy_n(ind.genome.begin(), encounter::kNumParams, a.begin());
          return a;
        }());
    const bool duplicate = std::any_of(top.begin(), top.end(), [&](const FoundScenario& f) {
      return similar(f.params, params, config.ranges);
    });
    if (duplicate) continue;

    FoundScenario found;
    found.params = params;
    found.fitness = ind.fitness;
    found.detail = evaluator.evaluate(params, /*stream_id=*/0xF00D);
    top.push_back(std::move(found));
  }
  return top;
}

/// Evaluation budget of the configured GA (gen 0 evaluates the full
/// population; later generations re-evaluate everything but the elites).
std::size_t ga_budget(const ga::GaConfig& config) {
  return config.population_size +
         (config.generations - 1) * (config.population_size - config.elites);
}

/// Generation a given global evaluation index belongs to.
std::size_t generation_of(std::size_t eval_index, const ga::GaConfig& config) {
  if (eval_index < config.population_size) return 0;
  const std::size_t per_gen = config.population_size - config.elites;
  return 1 + (eval_index - config.population_size) / per_gen;
}

/// Fitness function that also records one LogEntry per evaluation.  The
/// log slots are pre-sized and indexed by the (unique, deterministic)
/// evaluation index, so parallel workers never contend.
ga::FitnessFunction make_fitness(const EncounterEvaluator& evaluator,
                                 std::vector<LogEntry>* log, const ga::GaConfig& ga_config) {
  return [&evaluator, log, ga_config](const ga::Genome& genome, std::uint64_t eval_index) {
    std::array<double, encounter::kNumParams> a{};
    std::copy_n(genome.begin(), encounter::kNumParams, a.begin());
    const auto params = encounter::EncounterParams::from_array(a);
    const EncounterEvaluation eval = evaluator.evaluate(params, eval_index);
    if (log != nullptr && eval_index < log->size()) {
      LogEntry& entry = (*log)[eval_index];
      entry.evaluation_index = eval_index;
      entry.generation = generation_of(eval_index, ga_config);
      entry.params = params;
      entry.fitness = eval.fitness;
      entry.nmac_rate = eval.nmac_rate();
      entry.alert_fraction = eval.alert_fraction_own;
    }
    return eval.fitness;
  };
}

}  // namespace

ga::GenomeSpec make_genome_spec(const encounter::ParamRanges& ranges) {
  std::vector<ga::GeneBounds> bounds(encounter::kNumParams);
  for (std::size_t i = 0; i < encounter::kNumParams; ++i) {
    bounds[i] = {ranges.lo[i], ranges.hi[i]};
  }
  return ga::GenomeSpec(std::move(bounds));
}

ScenarioSearchResult search_challenging_scenarios(const ScenarioSearchConfig& config,
                                                  const sim::CasFactory& own_cas,
                                                  const sim::CasFactory& intruder_cas,
                                                  ThreadPool* pool,
                                                  const ga::GenerationCallback& on_generation) {
  const auto t0 = std::chrono::steady_clock::now();
  const EncounterEvaluator evaluator(config.fitness, own_cas, intruder_cas);
  const ga::GenomeSpec spec = make_genome_spec(config.ranges);

  ScenarioSearchResult result;
  std::vector<LogEntry> log(ga_budget(config.ga));
  result.ga =
      ga::run_ga(spec, make_fitness(evaluator, &log, config.ga), config.ga, pool, on_generation);
  log.resize(result.ga.total_evaluations);
  result.logbook = Logbook(std::move(log));
  result.top = collect_top(result.ga, config, evaluator);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

ScenarioSearchResult random_search_scenarios(const ScenarioSearchConfig& config,
                                             const sim::CasFactory& own_cas,
                                             const sim::CasFactory& intruder_cas,
                                             ThreadPool* pool) {
  const auto t0 = std::chrono::steady_clock::now();
  const EncounterEvaluator evaluator(config.fitness, own_cas, intruder_cas);
  const ga::GenomeSpec spec = make_genome_spec(config.ranges);
  const std::size_t budget = config.ga.population_size * config.ga.generations;

  ScenarioSearchResult result;
  std::vector<LogEntry> log(budget);
  ga::GaConfig log_config = config.ga;  // generation_of() maps everything to gen 0
  log_config.population_size = budget;
  result.ga = ga::run_random_search(spec, make_fitness(evaluator, &log, log_config), budget,
                                    config.ga.seed, pool);
  log.resize(result.ga.total_evaluations);
  result.logbook = Logbook(std::move(log));
  result.top = collect_top(result.ga, config, evaluator);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace cav::core
