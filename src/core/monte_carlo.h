// Monte-Carlo validation harness (§IV): estimate event probabilities —
// accident (NMAC) rate and alert ("false alarm" proxy) rate — by sampling
// encounters from a statistical encounter model, "the advantage of deriving
// such probabilities" that complements the GA search (which "is effective
// at fault-finding, but not at providing confirmatory evidence of
// fault-freeness", §VIII).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fitness.h"
#include "encounter/statistical_model.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace cav::core {

/// What an unequipped intruder does with itself (mixed-equipage sweeps).
enum class UnequippedBehavior {
  kPassive,        ///< flies its flight plan (the classic unequipped aircraft)
  kManeuverAtCpa,  ///< adversarial: maneuvers toward the own-ship's altitude
                   ///< in a window around its own CPA time (faults.h)
};

struct MonteCarloConfig {
  std::size_t encounters = 2000;   ///< sampled encounter geometries (>= 1)
  /// Intruders per encounter.  1 runs the paper's pairwise path (legacy
  /// geometry streams, results unchanged); K > 1 samples K intruders via
  /// encounter::MultiEncounterModel with per-intruder streams and runs the
  /// N-aircraft engine.  NMACs/separations then count own-ship pairs and
  /// alerts count any aircraft.
  std::size_t intruders = 1;
  /// max_time_s is overridden per encounter.  sim.threat_policy selects
  /// how equipped aircraft handle K > 1 traffic: kNearest (pairwise CAS vs
  /// nearest track, the PR 3 behavior), kCostFused (MultiThreatResolver
  /// arbitration over every gated threat), or kJointTable (the two most
  /// severe threats priced by the joint-threat table — the CAS factories
  /// must then carry an acasx::JointLogicTable) — the E12 density sweep
  /// compares all three under identical traffic.  sim.fault injects the
  /// fleet-wide fault profile; sim.coordination carries the loss model.
  sim::SimConfig sim;
  double sim_time_margin_s = 45.0;
  std::uint64_t seed = 99;

  // --- Mixed fleets (E14 degraded-mode axes) -------------------------
  /// Fraction of intruders carrying the intruder CAS.  Each intruder k of
  /// encounter i draws equipped/unequipped from a dedicated stream
  /// deterministic in (seed, i, k), so the equipage pattern is paired
  /// across policies and thread counts and does not perturb any other
  /// draw.  1.0 (default) equips everyone without drawing — the pre-fault
  /// path, bit-identical.
  double equipage_fraction = 1.0;
  UnequippedBehavior unequipped_behavior = UnequippedBehavior::kPassive;
  /// Per-agent fault profiles: when set, override sim.fault for the
  /// own-ship / every intruder respectively (degraded own receiver vs
  /// degraded traffic, asymmetric comms, ...).
  std::optional<sim::FaultProfile> own_fault;
  std::optional<sim::FaultProfile> intruder_fault;
};

/// Rates for one system configuration under the common traffic model.
struct SystemRates {
  std::string system;
  std::size_t encounters = 0;
  std::size_t nmacs = 0;
  std::size_t alerts = 0;            ///< encounters where either aircraft alerted
  double mean_min_separation_m = 0.0;
  /// Summed SimResult::wall_time_s over all encounters — the measured
  /// per-encounter cost sharded validation splits on (ROADMAP item 2) and
  /// the E16 scaling curve plots.  Host timing: reproducible rates, not a
  /// reproducible number.
  double sim_wall_s = 0.0;

  double mean_encounter_wall_s() const {
    return encounters ? sim_wall_s / static_cast<double>(encounters) : 0.0;
  }

  double nmac_rate() const {
    return encounters ? static_cast<double>(nmacs) / static_cast<double>(encounters) : 0.0;
  }
  double alert_rate() const {
    return encounters ? static_cast<double>(alerts) / static_cast<double>(encounters) : 0.0;
  }
  Interval nmac_ci() const { return wilson_interval(nmacs, encounters); }
  Interval alert_ci() const { return wilson_interval(alerts, encounters); }
};

/// Estimate rates for one equipage.  `own_cas` equips the own-ship and
/// `intruder_cas` each intruder that the equipage draw (see
/// MonteCarloConfig::equipage_fraction) selects; unequipped intruders fly
/// per `unequipped_behavior`; pass nullptr factories for unequipped
/// flight.  Encounter geometries, disturbance seeds, equipage draws, and
/// fault draws depend only on (config.seed, encounter index, agent
/// index), so different systems face exactly the same traffic — paired
/// comparison.
///
/// DEPRECATED (7-argument free function): this is now a thin wrapper that
/// runs a single-stripe core::ValidationCampaign (validation_campaign.h)
/// — bit-identical to the historical implementation.  New code should
/// construct a ValidationCampaign directly: it exposes the work-unit
/// surface (make_stripes / run_stripe / merge) that sharded execution,
/// the benches, and dist::CampaignDriver build on, and its
/// CampaignResult carries the degraded-mode bookkeeping this signature
/// cannot report.  The wrapper is kept for one release.
SystemRates estimate_rates(const encounter::StatisticalEncounterModel& model,
                           const MonteCarloConfig& config, const std::string& system_name,
                           const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                           ThreadPool* pool = nullptr);

/// risk_ratio's return value when the ratio is undefined because the
/// unequipped baseline recorded zero NMACs (0/0 traffic — nothing to
/// normalize against).  A negative sentinel instead of the historical
/// quiet NaN: it compares false against every threshold (NaN comparisons
/// are silently false TOO, but also poison downstream arithmetic without
/// a trace), prints recognizably, and round-trips through JSON.  Callers
/// that need the uncertainty-aware answer should use risk_ratio_wilson().
inline constexpr double kRiskRatioUndefined = -1.0;

/// Risk ratio of `system` relative to `unequipped` (the standard headline
/// metric: equipped NMAC rate / unequipped NMAC rate).  Returns
/// kRiskRatioUndefined when the baseline NMAC rate is zero.
double risk_ratio(const SystemRates& system, const SystemRates& unequipped);

/// Risk ratio with Wilson-interval awareness: the point ratio plus a
/// conservative 95% interval [lo, hi] formed from the two rates' Wilson
/// bounds (lo = sys.lo / base.hi, hi = sys.hi / base.lo).  When the
/// baseline recorded zero NMACs, `defined` is false, `ratio` is
/// kRiskRatioUndefined, and the interval is the honest [sys.lo/base.hi,
/// +inf) — the data bounds the ratio from below but not above.
struct RiskRatioEstimate {
  double ratio = kRiskRatioUndefined;
  double lo = 0.0;
  double hi = 0.0;
  bool defined = false;
};

RiskRatioEstimate risk_ratio_wilson(const SystemRates& system, const SystemRates& unequipped);

}  // namespace cav::core
