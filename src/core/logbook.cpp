#include "core/logbook.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/csv.h"
#include "util/expect.h"

namespace cav::core {

std::vector<LogEntry> Logbook::above(double fitness_threshold) const {
  std::vector<LogEntry> out;
  for (const auto& e : entries_) {
    if (e.fitness >= fitness_threshold) out.push_back(e);
  }
  return out;
}

void Logbook::save_csv(const std::string& path) const {
  CsvWriter csv(path);
  std::vector<std::string> header{"evaluation", "generation"};
  for (const auto& name : encounter::param_names()) header.emplace_back(name);
  header.insert(header.end(), {"fitness", "nmac_rate", "alert_fraction", "eval_wall_s"});
  csv.header(header);
  for (const auto& e : entries_) {
    csv.cell(e.evaluation_index).cell(e.generation);
    for (const double v : e.params.to_array()) csv.cell(v);
    csv.cell(e.fitness).cell(e.nmac_rate).cell(e.alert_fraction).cell(e.eval_wall_s);
    csv.end_row();
  }
}

Logbook Logbook::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Logbook::load_csv: cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("Logbook::load_csv: empty file " + path);

  std::vector<LogEntry> entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<double> values;
    while (std::getline(row, cell, ',')) values.push_back(std::stod(cell));
    // 3 trailing metrics historically; +1 for eval_wall_s (newer files).
    constexpr std::size_t expected = 2 + encounter::kNumParams + 3;
    if (values.size() != expected && values.size() != expected + 1) {
      throw std::runtime_error("Logbook::load_csv: malformed row in " + path);
    }
    LogEntry e;
    e.evaluation_index = static_cast<std::size_t>(values[0]);
    e.generation = static_cast<std::size_t>(values[1]);
    std::array<double, encounter::kNumParams> params{};
    std::copy_n(values.begin() + 2, encounter::kNumParams, params.begin());
    e.params = encounter::EncounterParams::from_array(params);
    e.fitness = values[2 + encounter::kNumParams];
    e.nmac_rate = values[3 + encounter::kNumParams];
    e.alert_fraction = values[4 + encounter::kNumParams];
    if (values.size() > 5 + encounter::kNumParams) {
      e.eval_wall_s = values[5 + encounter::kNumParams];
    }
    entries.push_back(e);
  }
  return Logbook(std::move(entries));
}

std::map<EncounterClass, std::size_t> class_histogram(const Logbook& logbook, int generation) {
  std::map<EncounterClass, std::size_t> histogram;
  for (const auto& e : logbook.entries()) {
    if (generation >= 0 && e.generation != static_cast<std::size_t>(generation)) continue;
    ++histogram[classify(e.params)];
  }
  return histogram;
}

std::vector<RegionReport> find_regions(const Logbook& logbook, double fitness_threshold,
                                       std::size_t clusters,
                                       const encounter::ParamRanges& ranges,
                                       std::uint64_t seed) {
  const auto survivors = logbook.above(fitness_threshold);
  if (survivors.size() < clusters || clusters == 0) return {};

  std::vector<encounter::EncounterParams> points;
  points.reserve(survivors.size());
  for (const auto& e : survivors) points.push_back(e.params);
  const KmeansResult km = kmeans(points, ranges, clusters, seed);

  std::vector<RegionReport> regions(clusters);
  std::vector<std::map<EncounterClass, std::size_t>> class_counts(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    regions[c].cluster = c;
    regions[c].lo.fill(std::numeric_limits<double>::infinity());
    regions[c].hi.fill(-std::numeric_limits<double>::infinity());
  }
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const std::size_t c = km.assignment[i];
    RegionReport& region = regions[c];
    ++region.members;
    region.mean_fitness += survivors[i].fitness;
    ++class_counts[c][classify(survivors[i].params)];
    const auto x = survivors[i].params.to_array();
    for (std::size_t d = 0; d < encounter::kNumParams; ++d) {
      region.lo[d] = std::min(region.lo[d], x[d]);
      region.hi[d] = std::max(region.hi[d], x[d]);
    }
  }
  for (std::size_t c = 0; c < clusters; ++c) {
    if (regions[c].members > 0) {
      regions[c].mean_fitness /= static_cast<double>(regions[c].members);
      const auto dominant = std::max_element(
          class_counts[c].begin(), class_counts[c].end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      regions[c].dominant_class = dominant->first;
    }
  }
  // Drop empty clusters (k-means may leave some unused on tiny inputs).
  regions.erase(std::remove_if(regions.begin(), regions.end(),
                               [](const RegionReport& r) { return r.members == 0; }),
                regions.end());
  return regions;
}

std::string describe_region(const RegionReport& region) {
  const auto names = encounter::param_names();
  std::ostringstream out;
  out << "region " << region.cluster << " (" << region.members << " scenarios, mean fitness "
      << region.mean_fitness << ", mostly " << encounter_class_name(region.dominant_class)
      << "):";
  for (std::size_t d = 0; d < encounter::kNumParams; ++d) {
    out << "\n    " << names[d] << " in [" << region.lo[d] << ", " << region.hi[d] << "]";
  }
  return out.str();
}

}  // namespace cav::core
