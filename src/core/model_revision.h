// Cost-weight revision loop for the §III grid model — the *parameter* half
// of the paper's Fig. 1 "manual model revision" edge.  The structural
// revision (the horizontal MDP) is exercised in bench_model_revision; this
// module covers the complementary loop the paper describes first: re-tune
// the punishment/reward weights of the MDP preference model, re-run the
// optimization, and re-evaluate the resulting logic in simulation.
//
// Cost revisions leave the transition structure (grid geometry and the
// §III stochastics) untouched, so the loop compiles the model into flat
// CSR arrays ONCE and refreshes only the cost tables between revisions
// (mdp::CompiledMdp::refresh_costs) — each re-solve pays for Bellman
// sweeps, not for re-flattening.  A GA over cost weights plugs in directly:
// evaluate() is deterministic for a given (revision, seed).
#pragma once

#include <cstddef>
#include <cstdint>

#include "mdp/compiled_mdp.h"
#include "toy2d/toy2d_mdp.h"

namespace cav {
class ThreadPool;
}

namespace cav::core {

/// A cost-only revision of the §III preference model.  Defaults are the
/// paper's numbers (collision 10000, maneuver 100, level reward 50).
struct Toy2dCostRevision {
  double collision_cost = 10000.0;
  double maneuver_cost = 100.0;
  double level_reward = 50.0;
};

/// What one revision's re-solve + closed-loop evaluation learned.
struct Toy2dRevisionReport {
  mdp::Policy policy;                 ///< revised logic table
  mdp::Values values;                 ///< optimal expected costs under the revision
  std::size_t solver_iterations = 0;  ///< value-iteration sweeps for this revision
  std::size_t episodes = 0;           ///< rollouts evaluated (all start altitudes)
  std::size_t collisions = 0;
  double collision_rate = 0.0;
  double mean_maneuver_steps = 0.0;
  /// Mean accumulated MDP cost per rollout under the BASE weights — the
  /// fixed yardstick that makes revisions comparable (scoring each revision
  /// by its own revised weights would make "cheaper" trivially achievable
  /// by zeroing the weights).
  double mean_base_cost = 0.0;
};

/// Re-solves the §III model across cost revisions, reusing one compiled
/// transition structure, and evaluates each revised logic table by
/// closed-loop rollouts from every encounter-start altitude.
class Toy2dRevisionLoop {
 public:
  /// `base` fixes the transition structure (grid sizes and stochastics);
  /// its cost weights are the yardstick for mean_base_cost.  The model is
  /// compiled once, here.
  explicit Toy2dRevisionLoop(const toy2d::Config& base, std::size_t episodes_per_start = 50,
                             std::uint64_t seed = 2016);

  /// Apply `revision`, re-solve (refresh_costs + compiled sweeps; `pool`
  /// parallelizes the Jacobi sweeps), and roll out the revised policy.
  Toy2dRevisionReport evaluate(const Toy2dCostRevision& revision, ThreadPool* pool = nullptr);

  std::size_t revisions_evaluated() const { return revisions_evaluated_; }
  const toy2d::Config& base_config() const { return base_; }
  const mdp::CompiledMdp& compiled() const { return compiled_; }

 private:
  toy2d::Config base_;
  toy2d::Toy2dMdp base_model_;   ///< base-weight model: the evaluation yardstick
  mdp::CompiledMdp compiled_;    ///< compiled once; costs refreshed per revision
  std::size_t episodes_per_start_;
  std::uint64_t seed_;
  std::size_t revisions_evaluated_ = 0;
};

}  // namespace cav::core
