// The paper's contribution (Fig. 3): GA-driven search over the encounter
// parameter space for "challenging situations where certain undesired (or
// desired) events happen" — here, encounters where the collision avoidance
// system under test suffers a high accident rate.
//
// The loop: genomes encode the 9 encounter parameters; the scenario
// generator turns a genome into initial states; simulations score it with
// the paper's fitness; the GA breeds toward higher fitness.  Random search
// over the same space with the same budget is the baseline (§V / ref [7]).
#pragma once

#include <string>
#include <vector>

#include "core/fitness.h"
#include "core/logbook.h"
#include "encounter/encounter.h"
#include "ga/ga.h"
#include "util/thread_pool.h"

namespace cav::core {

struct ScenarioSearchConfig {
  ga::GaConfig ga;                  ///< defaults: pop 200, 5 generations (§VII)
  encounter::ParamRanges ranges;    ///< the scenario space
  FitnessConfig fitness;            ///< 100 runs per encounter (§VII)
  std::size_t keep_top = 10;        ///< distinct top scenarios to report
};

/// One challenging scenario surfaced by the search.
struct FoundScenario {
  encounter::EncounterParams params;
  double fitness = 0.0;
  EncounterEvaluation detail;  ///< re-evaluation with a fixed stream for reporting
};

struct ScenarioSearchResult {
  ga::SearchResult ga;                ///< includes the Fig. 6 per-evaluation series
  std::vector<FoundScenario> top;     ///< descending fitness, deduplicated
  Logbook logbook;                    ///< every evaluated scenario with outcome
  double wall_seconds = 0.0;

  double best_fitness() const { return ga.best.fitness; }
};

/// Build the GA genome spec from the parameter ranges.
ga::GenomeSpec make_genome_spec(const encounter::ParamRanges& ranges);

/// Genome spec for a K-intruder search: 2 own genes + 7 per intruder,
/// index-aligned with encounter::MultiEncounterParams::to_vector().
ga::GenomeSpec make_multi_genome_spec(const encounter::ParamRanges& ranges,
                                      std::size_t intruders);

/// Run the GA search against the system pair produced by the factories.
ScenarioSearchResult search_challenging_scenarios(const ScenarioSearchConfig& config,
                                                  const sim::CasFactory& own_cas,
                                                  const sim::CasFactory& intruder_cas,
                                                  ThreadPool* pool = nullptr,
                                                  const ga::GenerationCallback& on_generation = {});

/// Random-search baseline with an identical evaluation budget.
ScenarioSearchResult random_search_scenarios(const ScenarioSearchConfig& config,
                                             const sim::CasFactory& own_cas,
                                             const sim::CasFactory& intruder_cas,
                                             ThreadPool* pool = nullptr);

/// Multi-intruder worst-case search: the same GA loop over the
/// (2 + 7K)-gene space, scored by the own-ship-centric fitness on the
/// N-aircraft engine.  To attack the fused multi-threat policy instead of
/// the nearest-threat one, set fitness.sim.threat_policy = kCostFused —
/// the GA then breeds worst cases against the arbitration layer itself.
struct MultiScenarioSearchConfig {
  ga::GaConfig ga;
  encounter::ParamRanges ranges;    ///< per-intruder bounds (pairwise shape)
  std::size_t intruders = 2;        ///< K >= 1
  FitnessConfig fitness;
  std::size_t keep_top = 10;
};

struct FoundMultiScenario {
  encounter::MultiEncounterParams params;
  double fitness = 0.0;
  MultiEncounterEvaluation detail;  ///< re-evaluation with a fixed stream
};

struct MultiScenarioSearchResult {
  ga::SearchResult ga;
  std::vector<FoundMultiScenario> top;  ///< descending fitness, deduplicated
  double wall_seconds = 0.0;

  double best_fitness() const { return ga.best.fitness; }
};

MultiScenarioSearchResult search_challenging_multi_scenarios(
    const MultiScenarioSearchConfig& config, const sim::CasFactory& own_cas,
    const sim::CasFactory& intruder_cas, ThreadPool* pool = nullptr,
    const ga::GenerationCallback& on_generation = {});

// --- Degraded-mode attack campaign (E14) -----------------------------
//
// The paper's claim is that search finds the weaknesses offline
// optimization hides; the degraded search extends the genome with FAULT
// GENES so the GA breeds the *conditions* along with the geometry: it can
// discover that a geometry is only deadly when the coordination link
// bursts at the wrong moment, or that a blackout window aligned with CPA
// defeats the joint table.  The benign corner (all fault genes 0) is
// inside the search space, so any degradation in a found scenario is
// something the GA chose because it paid off in fitness.

/// The degraded-mode conditions carried on the genome (kNumGenes genes,
/// appended after the (2 + 7K) geometry genes in to_vector order).
struct DegradedConditions {
  double message_loss_prob = 0.0;     ///< uniform per-link coordination loss
  double burst_enter_prob = 0.0;      ///< Gilbert–Elliott GOOD -> BAD rate
  double blackout_start_s = 0.0;      ///< fleet-wide comms blackout window
  double blackout_duration_s = 0.0;   ///< 0 = no blackout
  double adsb_dropout_burst_prob = 0.0;  ///< ADS-B outage-burst start rate

  static constexpr std::size_t kNumGenes = 5;
  /// Continuation probability of ADS-B dropout bursts (fixed, not a gene:
  /// mean burst length 2.5 cycles).
  static constexpr double kBurstContinueProb = 0.6;

  /// Write these conditions into a SimConfig (coordination loss model +
  /// fleet-wide fault profile).
  void apply(sim::SimConfig* sim) const;

  std::vector<double> to_vector() const;
  /// Decode from the last kNumGenes entries of a degraded genome.
  static DegradedConditions from_genome_tail(const std::vector<double>& genome);
};

/// Upper bounds of the fault genes (lower bounds are all 0 — the benign
/// corner stays in the space).
struct DegradedGeneRanges {
  double message_loss_hi = 0.75;
  double burst_enter_hi = 0.4;
  double blackout_start_hi = 60.0;
  double blackout_duration_hi = 40.0;
  double dropout_burst_hi = 0.4;
};

struct FoundDegradedScenario {
  encounter::MultiEncounterParams params;
  DegradedConditions faults;
  double fitness = 0.0;
  MultiEncounterEvaluation detail;  ///< re-evaluation with a fixed stream
};

struct DegradedSearchResult {
  ga::SearchResult ga;
  std::vector<FoundDegradedScenario> top;  ///< descending fitness, deduplicated
  double wall_seconds = 0.0;

  double best_fitness() const { return ga.best.fitness; }
};

/// Genome spec of the degraded search: the multi-intruder geometry genes
/// plus the kNumGenes fault genes.
ga::GenomeSpec make_degraded_genome_spec(const encounter::ParamRanges& ranges,
                                         std::size_t intruders,
                                         const DegradedGeneRanges& fault_ranges);

/// GA attack over (geometry x degraded conditions).  config.fitness.sim
/// supplies the baseline the fault genes are applied on top of (threat
/// policy, equipage fractions, per-agent profiles) — point
/// config.fitness.sim.threat_policy at kJointTable to attack the joint
/// table under degraded comms.
DegradedSearchResult search_degraded_multi_scenarios(
    const MultiScenarioSearchConfig& config, const DegradedGeneRanges& fault_ranges,
    const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
    ThreadPool* pool = nullptr, const ga::GenerationCallback& on_generation = {});

}  // namespace cav::core
