#include "core/monte_carlo.h"

#include <atomic>
#include <limits>
#include <mutex>

#include "encounter/encounter.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace cav::core {

SystemRates estimate_rates(const encounter::StatisticalEncounterModel& model,
                           const MonteCarloConfig& config, const std::string& system_name,
                           const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                           ThreadPool* pool) {
  SystemRates rates;
  rates.system = system_name;
  rates.encounters = config.encounters;

  std::atomic<std::size_t> nmacs{0};
  std::atomic<std::size_t> alerts{0};
  std::mutex sep_mutex;
  double sep_sum = 0.0;

  const auto run_one = [&](std::size_t i) {
    // The geometry stream depends only on (seed, i): every system sees the
    // same traffic sample.
    RngStream geometry_rng = RngStream::derive(config.seed, "mc-geometry", i);
    const encounter::EncounterParams params = model.sample(geometry_rng);
    const encounter::InitialStates init = encounter::generate_initial_states(params);

    sim::SimConfig sim_config = config.sim;
    sim_config.max_time_s = params.t_cpa_s + config.sim_time_margin_s;

    sim::AgentSetup own;
    own.initial_state = init.own;
    if (own_cas) own.cas = own_cas();
    sim::AgentSetup intruder;
    intruder.initial_state = init.intruder;
    if (intruder_cas) intruder.cas = intruder_cas();

    constexpr std::uint64_t kMcTag = 0x4D43'4D43ULL;  // "MCMC"
    const std::uint64_t sim_seed = mix64(config.seed ^ mix64(kMcTag ^ i));
    const sim::SimResult result =
        sim::run_encounter(sim_config, std::move(own), std::move(intruder), sim_seed);

    if (result.nmac) nmacs.fetch_add(1, std::memory_order_relaxed);
    if (result.own.ever_alerted || result.intruder.ever_alerted) {
      alerts.fetch_add(1, std::memory_order_relaxed);
    }
    {
      const std::lock_guard<std::mutex> lock(sep_mutex);
      sep_sum += result.proximity.min_distance_m;
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(config.encounters, run_one);
  } else {
    for (std::size_t i = 0; i < config.encounters; ++i) run_one(i);
  }

  rates.nmacs = nmacs.load();
  rates.alerts = alerts.load();
  rates.mean_min_separation_m =
      config.encounters ? sep_sum / static_cast<double>(config.encounters) : 0.0;
  return rates;
}

double risk_ratio(const SystemRates& system, const SystemRates& unequipped) {
  const double base = unequipped.nmac_rate();
  if (base <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return system.nmac_rate() / base;
}

}  // namespace cav::core
