#include "core/monte_carlo.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "encounter/encounter.h"
#include "encounter/multi_encounter.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {
namespace {

/// Deterministic equipage draw for intruder k of encounter i: a dedicated
/// stream per (seed, i, k), so the pattern is identical across policies,
/// thread counts, and K growth, and no other draw shifts.  The boundary
/// fractions never draw — 1.0 is the pre-fault equip-everyone path.
bool intruder_equipped(const MonteCarloConfig& config, std::size_t encounter_index,
                       std::size_t intruder_index) {
  if (config.equipage_fraction >= 1.0) return true;
  if (config.equipage_fraction <= 0.0) return false;
  RngStream rng = RngStream::derive(config.seed, "mc-equipage", encounter_index, intruder_index);
  return rng.chance(config.equipage_fraction);
}

/// Equip one intruder slot: the intruder CAS when the equipage draw says
/// so, otherwise the configured unequipped behavior (passive, or the
/// scripted adversary that maneuvers toward the own-ship around its CPA).
void equip_intruder(const MonteCarloConfig& config, std::size_t encounter_index,
                    std::size_t intruder_index, double t_cpa_s,
                    const sim::CasFactory& intruder_cas, sim::AgentSetup* setup) {
  if (intruder_equipped(config, encounter_index, intruder_index)) {
    if (intruder_cas) setup->cas = intruder_cas();
  } else if (config.unequipped_behavior == UnequippedBehavior::kManeuverAtCpa) {
    sim::ScriptedManeuverConfig script;
    script.start_s = std::max(0.0, t_cpa_s - 10.0);
    script.duration_s = 20.0;
    script.decision_period_s = config.sim.decision_period_s;
    setup->cas = std::make_unique<sim::ScriptedManeuverCas>(script);
    setup->count_alerts = false;  // attacks are not avoidance alerts
  }
  if (config.intruder_fault.has_value()) setup->fault = config.intruder_fault;
}

}  // namespace

SystemRates estimate_rates(const encounter::StatisticalEncounterModel& model,
                           const MonteCarloConfig& config, const std::string& system_name,
                           const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                           ThreadPool* pool) {
  expect(config.encounters >= 1, "encounters >= 1");
  expect(config.intruders >= 1, "intruders >= 1");

  SystemRates rates;
  rates.system = system_name;
  rates.encounters = config.encounters;

  const encounter::MultiEncounterModel multi_model(config.intruders, model.config());

  // Striped accumulators: each stripe owns a contiguous slice of the
  // encounter indices and accumulates into its own slot, so the hot loop
  // carries no lock or atomic and validation scales with cores.  Stripes
  // are combined in index order afterwards, which makes the totals —
  // including the floating-point separation sum — bit-identical for any
  // thread count (and for the serial path, which walks the same stripes).
  struct Partial {
    std::size_t nmacs = 0;
    std::size_t alerts = 0;
    double sep_sum = 0.0;
    double wall_s = 0.0;
  };
  const std::size_t num_stripes = std::min<std::size_t>(config.encounters, 64);
  std::vector<Partial> partials(num_stripes);

  constexpr std::uint64_t kMcTag = 0x4D43'4D43ULL;  // "MCMC"

  const auto run_pairwise = [&](std::size_t i, Partial& local) {
    // The geometry stream depends only on (seed, i): every system sees the
    // same traffic sample.
    RngStream geometry_rng = RngStream::derive(config.seed, "mc-geometry", i);
    const encounter::EncounterParams params = model.sample(geometry_rng);
    const encounter::InitialStates init = encounter::generate_initial_states(params);

    sim::SimConfig sim_config = config.sim;
    sim_config.max_time_s = params.t_cpa_s + config.sim_time_margin_s;

    sim::AgentSetup own;
    own.initial_state = init.own;
    if (own_cas) own.cas = own_cas();
    if (config.own_fault.has_value()) own.fault = config.own_fault;
    sim::AgentSetup intruder;
    intruder.initial_state = init.intruder;
    equip_intruder(config, i, /*intruder_index=*/0, params.t_cpa_s, intruder_cas, &intruder);

    const std::uint64_t sim_seed = mix64(config.seed ^ mix64(kMcTag ^ i));
    const sim::SimResult result =
        sim::run_encounter(sim_config, std::move(own), std::move(intruder), sim_seed);

    if (result.nmac) ++local.nmacs;
    if (result.own.ever_alerted || result.intruder.ever_alerted) ++local.alerts;
    local.sep_sum += result.proximity.min_distance_m;
    local.wall_s += result.wall_time_s;
  };

  const auto run_multi = [&](std::size_t i, Partial& local) {
    // Per-intruder geometry streams depend only on (seed, i, k): the
    // traffic sample is paired across systems and across thread counts,
    // and intruder k's geometry does not change when K grows.
    const encounter::MultiEncounterParams params = multi_model.sample(config.seed, i);
    const std::vector<sim::UavState> states = encounter::generate_multi_initial_states(params);

    sim::SimConfig sim_config = config.sim;
    sim_config.max_time_s = params.max_t_cpa_s() + config.sim_time_margin_s;

    std::vector<sim::AgentSetup> agents(states.size());
    agents[0].initial_state = states[0];
    if (own_cas) agents[0].cas = own_cas();
    if (config.own_fault.has_value()) agents[0].fault = config.own_fault;
    for (std::size_t a = 1; a < states.size(); ++a) {
      agents[a].initial_state = states[a];
      equip_intruder(config, i, a - 1, params.intruders[a - 1].t_cpa_s, intruder_cas,
                     &agents[a]);
    }

    const std::uint64_t sim_seed = mix64(config.seed ^ mix64(kMcTag ^ i));
    const sim::SimResult result =
        sim::run_multi_encounter(sim_config, std::move(agents), sim_seed);

    if (result.own_nmac()) ++local.nmacs;
    bool any_alert = false;
    for (const sim::AgentReport& r : result.agents) any_alert = any_alert || r.ever_alerted;
    if (any_alert) ++local.alerts;
    local.sep_sum += result.own_min_separation_m();
    local.wall_s += result.wall_time_s;
  };

  const auto run_one = [&](std::size_t i, Partial& local) {
    if (config.intruders == 1) {
      run_pairwise(i, local);
    } else {
      run_multi(i, local);
    }
  };

  const auto run_stripe = [&](std::size_t stripe) {
    const std::size_t begin = stripe * config.encounters / num_stripes;
    const std::size_t end = (stripe + 1) * config.encounters / num_stripes;
    Partial local;  // accumulate on the stack; one write-back per stripe
    for (std::size_t i = begin; i < end; ++i) run_one(i, local);
    partials[stripe] = local;
  };

  if (pool != nullptr) {
    pool->parallel_for(num_stripes, run_stripe);
  } else {
    for (std::size_t stripe = 0; stripe < num_stripes; ++stripe) run_stripe(stripe);
  }

  double sep_sum = 0.0;
  for (const Partial& p : partials) {
    rates.nmacs += p.nmacs;
    rates.alerts += p.alerts;
    sep_sum += p.sep_sum;
    rates.sim_wall_s += p.wall_s;
  }
  rates.mean_min_separation_m =
      config.encounters ? sep_sum / static_cast<double>(config.encounters) : 0.0;
  return rates;
}

double risk_ratio(const SystemRates& system, const SystemRates& unequipped) {
  const double base = unequipped.nmac_rate();
  if (base <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return system.nmac_rate() / base;
}

}  // namespace cav::core
