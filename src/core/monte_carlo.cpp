#include "core/monte_carlo.h"

#include <limits>

#include "core/validation_campaign.h"

namespace cav::core {

SystemRates estimate_rates(const encounter::StatisticalEncounterModel& model,
                           const MonteCarloConfig& config, const std::string& system_name,
                           const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                           ThreadPool* pool) {
  // A single-stripe campaign over the shared kernel — bit-identical to the
  // pre-campaign implementation (asserted in tests/test_core_campaign).
  return ValidationCampaign(model, config, system_name, own_cas, intruder_cas)
      .run(pool)
      .rates;
}

double risk_ratio(const SystemRates& system, const SystemRates& unequipped) {
  const double base = unequipped.nmac_rate();
  if (base <= 0.0) return kRiskRatioUndefined;
  return system.nmac_rate() / base;
}

RiskRatioEstimate risk_ratio_wilson(const SystemRates& system, const SystemRates& unequipped) {
  RiskRatioEstimate est;
  est.defined = unequipped.nmac_rate() > 0.0;
  est.ratio = est.defined ? system.nmac_rate() / unequipped.nmac_rate() : kRiskRatioUndefined;

  const Interval sys_ci = system.nmac_ci();
  const Interval base_ci = unequipped.nmac_ci();
  // Conservative interval ratio: the smallest plausible numerator over the
  // largest plausible denominator, and vice versa.  A baseline whose Wilson
  // lower bound is 0 (always true at 0 observed NMACs) gives an unbounded
  // upper limit — the honest answer when the baseline saw nothing.
  est.lo = base_ci.hi > 0.0 ? sys_ci.lo / base_ci.hi : 0.0;
  est.hi = base_ci.lo > 0.0 ? sys_ci.hi / base_ci.lo
                            : std::numeric_limits<double>::infinity();
  return est;
}

}  // namespace cav::core
