// Search logbook: every scenario a search evaluates, with its outcome.
//
// §VIII: "It might be possible to extend the approach to instead find
// *areas* of the search space ... Data mining techniques, such as
// clustering, could potentially be used to analyze the logged data to find
// such areas."  This module is that logging-and-mining substrate: the
// scenario search records one entry per evaluation (deterministically
// indexed, so parallel evaluation keeps the order stable), the logbook
// round-trips through CSV, and the analysis helpers aggregate it into the
// per-generation geometry mix and cluster-region reports the benches and
// examples print.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fitness.h"
#include "encounter/encounter.h"

namespace cav::core {

/// One evaluated scenario.
struct LogEntry {
  std::size_t evaluation_index = 0;  ///< global evaluation order
  std::size_t generation = 0;        ///< GA generation (0 for random search)
  encounter::EncounterParams params;
  double fitness = 0.0;
  double nmac_rate = 0.0;
  double alert_fraction = 0.0;
  /// Wall-clock seconds the evaluation's simulations cost (summed
  /// SimResult::wall_time_s).  Host timing — varies run to run; 0 in
  /// logbooks written before the column existed.
  double eval_wall_s = 0.0;
};

class Logbook {
 public:
  Logbook() = default;
  explicit Logbook(std::vector<LogEntry> entries) : entries_(std::move(entries)) {}

  const std::vector<LogEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void add(LogEntry entry) { entries_.push_back(std::move(entry)); }

  /// Entries with fitness >= threshold.
  std::vector<LogEntry> above(double fitness_threshold) const;

  /// Save/load as CSV (header: evaluation, generation, the 9 parameters,
  /// fitness, nmac_rate, alert_fraction, eval_wall_s).  load_csv accepts
  /// files without the trailing eval_wall_s column (older logbooks).
  void save_csv(const std::string& path) const;
  static Logbook load_csv(const std::string& path);

 private:
  std::vector<LogEntry> entries_;
};

/// Count of entries per geometry class, optionally restricted to one
/// generation (-1 = all).
std::map<EncounterClass, std::size_t> class_histogram(const Logbook& logbook,
                                                      int generation = -1);

/// Axis-aligned bounding intervals of the high-fitness region per cluster:
/// the "areas of the search space" report.  Clusters k-means over the
/// entries above the threshold.
struct RegionReport {
  std::size_t cluster = 0;
  std::size_t members = 0;
  EncounterClass dominant_class = EncounterClass::kOther;
  double mean_fitness = 0.0;
  std::array<double, encounter::kNumParams> lo{};
  std::array<double, encounter::kNumParams> hi{};
};

std::vector<RegionReport> find_regions(const Logbook& logbook, double fitness_threshold,
                                       std::size_t clusters,
                                       const encounter::ParamRanges& ranges,
                                       std::uint64_t seed = 1);

/// Human-readable one-paragraph rendering of a region.
std::string describe_region(const RegionReport& region);

}  // namespace cav::core
