// The campaign/work-unit surface of Monte-Carlo validation (§IV) — the
// primary entry point since PR 9; estimate_rates() is a single-stripe
// campaign over the same kernel.
//
// A campaign is a fixed grid of CANONICAL ACCUMULATOR CELLS: cell c owns
// the contiguous encounter indices [c*E/C, (c+1)*E/C) with C =
// min(E, 64), exactly the striping the pre-campaign estimate_rates used.
// Every execution — serial, thread-pooled, or sharded across processes —
// accumulates each cell's partial (NMAC/alert counts, separation and
// wall-clock sums) serially in index order, and a merge combines the
// per-cell partials in cell order.  Since double addition is grouping-
// dependent, fixing the grouping at the cell granularity is what makes
// N-shard results BIT-IDENTICAL to the single-process run for any shard
// count and any completion order (asserted in tests/test_dist_campaign).
//
// Work units are EncounterStripe{seed, begin, end}: a contiguous,
// cell-aligned slice of the encounter index range.  All random draws —
// geometry, disturbance, equipage, faults — key on (seed, encounter
// index, agent index) only, so a stripe's result does not depend on which
// process or thread runs it.  dist::CampaignDriver (src/dist/) hands
// stripes to worker processes and merges through the same merge().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/monte_carlo.h"
#include "encounter/multi_encounter.h"
#include "encounter/statistical_model.h"
#include "util/thread_pool.h"

namespace cav::core {

/// One unit of campaign work: encounters [begin, end) under `seed`.
/// Boundaries must lie on canonical cell boundaries
/// (ValidationCampaign::cell_begin); make_stripes only produces such.
struct EncounterStripe {
  std::uint64_t seed = 0;
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive

  std::size_t size() const { return end - begin; }
};

/// One canonical cell's partial sums.  Integer counts are exact; the
/// double sums are accumulated serially over the cell's encounters, so a
/// cell's value is independent of the execution that produced it.
struct StripeCell {
  std::uint64_t nmacs = 0;
  std::uint64_t alerts = 0;
  double sep_sum = 0.0;
  double wall_s = 0.0;
};

/// The result of running one stripe: its cells, in cell order.
struct StripeResult {
  std::size_t first_cell = 0;  ///< global index of cells.front()
  std::vector<StripeCell> cells;
};

/// A finished campaign.  `rates` is bit-identical to the single-process
/// estimate_rates run whenever every stripe ran to completion (the
/// degraded path re-runs lost stripes, which preserves this — see
/// dist::CampaignDriver).
struct CampaignResult {
  SystemRates rates;
  std::size_t work_units = 0;  ///< stripes merged
  std::size_t requeues = 0;    ///< stripes re-issued after worker loss
  bool degraded = false;       ///< some worker died or timed out
  std::vector<std::string> notes;  ///< human-readable degradation notes
  double wall_s = 0.0;             ///< campaign wall clock (host timing)
};

/// Describes one validation campaign — the encounter model, the
/// Monte-Carlo configuration, and the two CAS factories — and runs any
/// cell-aligned slice of it.  The object is immutable after construction
/// and safe to share across threads (run_stripe is const and keeps no
/// mutable state).
class ValidationCampaign {
 public:
  ValidationCampaign(const encounter::StatisticalEncounterModel& model,
                     MonteCarloConfig config, std::string system_name,
                     sim::CasFactory own_cas, sim::CasFactory intruder_cas);

  const MonteCarloConfig& config() const { return config_; }
  const std::string& system_name() const { return system_name_; }

  /// Canonical accumulation grid: min(encounters, 64) cells.
  std::size_t num_cells() const { return num_cells_; }
  /// First encounter index of cell c (c == num_cells() gives encounters).
  std::size_t cell_begin(std::size_t cell) const {
    return cell * config_.encounters / num_cells_;
  }

  /// Partition the campaign into at most `shards` cell-aligned stripes
  /// (ragged when cells don't divide evenly; empty stripes are dropped,
  /// so fewer than `shards` may be returned).  Every stripe carries
  /// config().seed.
  std::vector<EncounterStripe> make_stripes(std::size_t shards) const;

  /// Run one stripe.  `stripe.begin`/`end` must be cell-aligned (begin
  /// may equal end for an empty stripe).  `pool` parallelizes across the
  /// stripe's cells; with or without it the per-cell partials are
  /// identical.  The stripe's seed overrides config().seed for every
  /// draw, so a driver can re-seed work units without rebuilding the
  /// campaign.
  StripeResult run_stripe(const EncounterStripe& stripe, ThreadPool* pool = nullptr) const;

  /// Merge stripe results into rates.  The results must tile
  /// [0, num_cells()) exactly (any order; merge sorts by first_cell).
  /// Accumulation walks cells in index order — the bit-identity contract.
  SystemRates merge(const std::vector<StripeResult>& results) const;

  /// The whole campaign as a single stripe + merge — what
  /// estimate_rates() wraps.
  CampaignResult run(ThreadPool* pool = nullptr) const;

 private:
  encounter::StatisticalEncounterModel model_;
  encounter::MultiEncounterModel multi_model_;
  MonteCarloConfig config_;
  std::string system_name_;
  sim::CasFactory own_cas_;
  sim::CasFactory intruder_cas_;
  std::size_t num_cells_ = 1;
};

}  // namespace cav::core
