#include "core/fitness.h"

#include <algorithm>
#include <limits>

#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {
namespace {

/// Equipage draw for one intruder slot of one fitness run: a dedicated
/// stream per (run_seed, intruder index) — run_seed already mixes
/// (config.seed, stream_id, run_index) — so no other draw shifts and the
/// boundary fractions never draw (1.0 is the pre-fault path).
bool fitness_intruder_equipped(const FitnessConfig& config, std::uint64_t run_seed,
                               std::size_t intruder_index) {
  if (config.equipage_fraction >= 1.0) return true;
  if (config.equipage_fraction <= 0.0) return false;
  RngStream rng = RngStream::derive(run_seed, "fit-equipage", intruder_index);
  return rng.chance(config.equipage_fraction);
}

}  // namespace

EncounterEvaluator::EncounterEvaluator(FitnessConfig config, sim::CasFactory own_cas,
                                       sim::CasFactory intruder_cas)
    : config_(std::move(config)), own_cas_(std::move(own_cas)),
      intruder_cas_(std::move(intruder_cas)) {
  expect(config_.runs_per_encounter >= 1, "runs_per_encounter >= 1");
  expect(config_.gain_max > 0.0, "gain_max > 0");
}

sim::SimResult EncounterEvaluator::run_once(const encounter::EncounterParams& params,
                                            std::uint64_t stream_id, std::size_t run_index,
                                            bool record_trajectory) const {
  const encounter::InitialStates init = encounter::generate_initial_states(params);

  sim::SimConfig sim_config = config_.sim;
  sim_config.max_time_s = params.t_cpa_s + config_.sim_time_margin_s;
  sim_config.record_trajectory = record_trajectory;

  const std::uint64_t run_seed =
      mix64(config_.seed ^ mix64(stream_id * 0x9e3779b97f4a7c15ULL + run_index));

  sim::AgentSetup own;
  own.initial_state = init.own;
  if (own_cas_) own.cas = own_cas_();
  if (config_.own_fault.has_value()) own.fault = config_.own_fault;
  sim::AgentSetup intruder;
  intruder.initial_state = init.intruder;
  if (intruder_cas_ && fitness_intruder_equipped(config_, run_seed, 0)) {
    intruder.cas = intruder_cas_();
  }
  if (config_.intruder_fault.has_value()) intruder.fault = config_.intruder_fault;

  return sim::run_encounter(sim_config, std::move(own), std::move(intruder), run_seed);
}

std::vector<FitnessRunOutcome> EncounterEvaluator::evaluate_runs(
    const encounter::EncounterParams& params, std::uint64_t stream_id, std::size_t begin,
    std::size_t end) const {
  expect(begin <= end && end <= config_.runs_per_encounter, "run range inside the encounter");
  std::vector<FitnessRunOutcome> outcomes;
  outcomes.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) {
    const sim::SimResult result = run_once(params, stream_id, k, /*record_trajectory=*/false);
    outcomes.push_back({result.miss_distance_m(), result.nmac, result.own.ever_alerted,
                        result.wall_time_s});
  }
  return outcomes;
}

EncounterEvaluation EncounterEvaluator::merge(std::span<const FitnessRunOutcome> outcomes) const {
  expect(outcomes.size() == config_.runs_per_encounter, "outcomes cover every run");
  EncounterEvaluation eval;
  eval.runs = config_.runs_per_encounter;
  eval.min_miss_m = std::numeric_limits<double>::infinity();

  double gain_sum = 0.0;
  double miss_sum = 0.0;
  std::size_t own_alerts = 0;

  for (const FitnessRunOutcome& run : outcomes) {
    const double d_k = run.miss_m;
    gain_sum += config_.gain_max / (1.0 + d_k);
    miss_sum += d_k;
    eval.min_miss_m = std::min(eval.min_miss_m, d_k);
    if (run.nmac) ++eval.nmac_count;
    if (run.own_alert) ++own_alerts;
    eval.wall_s += run.wall_s;
  }

  const auto n = static_cast<double>(config_.runs_per_encounter);
  eval.fitness = gain_sum / n;
  eval.mean_miss_m = miss_sum / n;
  eval.alert_fraction_own = static_cast<double>(own_alerts) / n;
  return eval;
}

EncounterEvaluation EncounterEvaluator::evaluate(const encounter::EncounterParams& params,
                                                 std::uint64_t stream_id) const {
  // The single-stripe form of the work-unit surface: one flat run range,
  // merged in run order — the historical loop, bit-identically.
  return merge(evaluate_runs(params, stream_id, 0, config_.runs_per_encounter));
}

MultiEncounterEvaluator::MultiEncounterEvaluator(FitnessConfig config, sim::CasFactory own_cas,
                                                 sim::CasFactory intruder_cas)
    : config_(std::move(config)), own_cas_(std::move(own_cas)),
      intruder_cas_(std::move(intruder_cas)) {
  expect(config_.runs_per_encounter >= 1, "runs_per_encounter >= 1");
  expect(config_.gain_max > 0.0, "gain_max > 0");
}

sim::SimResult MultiEncounterEvaluator::run_once(const encounter::MultiEncounterParams& params,
                                                 std::uint64_t stream_id, std::size_t run_index,
                                                 bool record_trajectory) const {
  const std::vector<sim::UavState> states = encounter::generate_multi_initial_states(params);

  sim::SimConfig sim_config = config_.sim;
  sim_config.max_time_s = params.max_t_cpa_s() + config_.sim_time_margin_s;
  sim_config.record_trajectory = record_trajectory;

  const std::uint64_t run_seed =
      mix64(config_.seed ^ mix64(stream_id * 0x9e3779b97f4a7c15ULL + run_index));

  std::vector<sim::AgentSetup> agents(states.size());
  agents[0].initial_state = states[0];
  if (own_cas_) agents[0].cas = own_cas_();
  if (config_.own_fault.has_value()) agents[0].fault = config_.own_fault;
  for (std::size_t i = 1; i < states.size(); ++i) {
    agents[i].initial_state = states[i];
    if (intruder_cas_ && fitness_intruder_equipped(config_, run_seed, i - 1)) {
      agents[i].cas = intruder_cas_();
    }
    if (config_.intruder_fault.has_value()) agents[i].fault = config_.intruder_fault;
  }

  return sim::run_multi_encounter(sim_config, std::move(agents), run_seed);
}

std::vector<FitnessRunOutcome> MultiEncounterEvaluator::evaluate_runs(
    const encounter::MultiEncounterParams& params, std::uint64_t stream_id, std::size_t begin,
    std::size_t end) const {
  expect(begin <= end && end <= config_.runs_per_encounter, "run range inside the encounter");
  std::vector<FitnessRunOutcome> outcomes;
  outcomes.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) {
    const sim::SimResult result = run_once(params, stream_id, k, /*record_trajectory=*/false);
    outcomes.push_back({result.own_miss_distance_m(), result.own_nmac(),
                        result.own.ever_alerted, result.wall_time_s});
  }
  return outcomes;
}

MultiEncounterEvaluation MultiEncounterEvaluator::merge(
    std::span<const FitnessRunOutcome> outcomes) const {
  expect(outcomes.size() == config_.runs_per_encounter, "outcomes cover every run");
  MultiEncounterEvaluation eval;
  eval.runs = config_.runs_per_encounter;
  eval.min_miss_m = std::numeric_limits<double>::infinity();

  double gain_sum = 0.0;
  double miss_sum = 0.0;
  std::size_t own_alerts = 0;

  for (const FitnessRunOutcome& run : outcomes) {
    const double d_k = run.miss_m;
    gain_sum += config_.gain_max / (1.0 + d_k);
    miss_sum += d_k;
    eval.min_miss_m = std::min(eval.min_miss_m, d_k);
    if (run.nmac) ++eval.own_nmac_count;
    if (run.own_alert) ++own_alerts;
    eval.wall_s += run.wall_s;
  }

  const auto n = static_cast<double>(config_.runs_per_encounter);
  eval.fitness = gain_sum / n;
  eval.mean_miss_m = miss_sum / n;
  eval.alert_fraction_own = static_cast<double>(own_alerts) / n;
  return eval;
}

MultiEncounterEvaluation MultiEncounterEvaluator::evaluate(
    const encounter::MultiEncounterParams& params, std::uint64_t stream_id) const {
  return merge(evaluate_runs(params, stream_id, 0, config_.runs_per_encounter));
}

}  // namespace cav::core
