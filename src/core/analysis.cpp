#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/angles.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {
namespace {

/// Horizontal closure speed (m/s) implied by the parameterization: the
/// magnitude of the relative horizontal velocity (own bearing is 0).
double horizontal_closure(const encounter::EncounterParams& p) {
  const double rvx = p.gs_int_mps * std::cos(p.theta_int_rad) - p.gs_own_mps;
  const double rvy = p.gs_int_mps * std::sin(p.theta_int_rad);
  return std::hypot(rvx, rvy);
}

std::array<double, encounter::kNumParams> normalize(const encounter::EncounterParams& p,
                                                    const encounter::ParamRanges& ranges) {
  auto x = p.to_array();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = ranges.hi[i] - ranges.lo[i];
    x[i] = w > 0.0 ? (x[i] - ranges.lo[i]) / w : 0.0;
  }
  return x;
}

double sq_distance(const std::array<double, encounter::kNumParams>& a,
                   const std::array<double, encounter::kNumParams>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

const char* encounter_class_name(EncounterClass c) {
  switch (c) {
    case EncounterClass::kHeadOn: return "head-on";
    case EncounterClass::kTailApproach: return "tail-approach";
    case EncounterClass::kOvertake: return "overtake";
    case EncounterClass::kCrossing: return "crossing";
    case EncounterClass::kOther: return "other";
  }
  return "?";
}

EncounterClass classify(const encounter::EncounterParams& params,
                        const ClassifierThresholds& thresholds) {
  // Own bearing is fixed at 0 by the encoding, so the intruder's course IS
  // the course difference.
  const double course_diff = std::abs(wrap_pi(params.theta_int_rad));

  if (course_diff >= thresholds.head_on_course_diff_rad) return EncounterClass::kHeadOn;

  if (course_diff <= thresholds.tail_course_diff_rad &&
      horizontal_closure(params) <= thresholds.slow_closure_mps) {
    const bool opposite_senses = params.vs_own_mps * params.vs_int_mps < 0.0 &&
                                 std::abs(params.vs_own_mps) >= thresholds.opposite_vs_min_mps &&
                                 std::abs(params.vs_int_mps) >= thresholds.opposite_vs_min_mps;
    return opposite_senses ? EncounterClass::kTailApproach : EncounterClass::kOvertake;
  }

  if (course_diff > thresholds.tail_course_diff_rad &&
      course_diff < thresholds.head_on_course_diff_rad) {
    return EncounterClass::kCrossing;
  }
  return EncounterClass::kOther;
}

KmeansResult kmeans(const std::vector<encounter::EncounterParams>& points,
                    const encounter::ParamRanges& ranges, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations) {
  expect(k >= 1, "k >= 1");
  expect(points.size() >= k, "at least k points");

  std::vector<std::array<double, encounter::kNumParams>> x;
  x.reserve(points.size());
  for (const auto& p : points) x.push_back(normalize(p, ranges));

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest existing centroid.
  RngStream rng = RngStream::derive(seed, "kmeans");
  KmeansResult result;
  result.centroids.push_back(x[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(x.size()) - 1))]);
  while (result.centroids.size() < k) {
    std::vector<double> weights(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : result.centroids) best = std::min(best, sq_distance(x[i], c));
      weights[i] = best;
    }
    result.centroids.push_back(x[static_cast<std::size_t>(rng.discrete(weights))]);
  }

  result.assignment.assign(x.size(), 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < x.size(); ++i) {
      std::size_t best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(x[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Update.
    std::vector<std::array<double, encounter::kNumParams>> sums(
        k, std::array<double, encounter::kNumParams>{});
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const std::size_t c = result.assignment[i];
      for (std::size_t d = 0; d < encounter::kNumParams; ++d) sums[c][d] += x[i][d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old centroid
      for (std::size_t d = 0; d < encounter::kNumParams; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }

  result.cluster_sizes.assign(k, 0);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ++result.cluster_sizes[result.assignment[i]];
    result.inertia += sq_distance(x[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

std::string describe(const encounter::EncounterParams& params) {
  std::ostringstream out;
  out << encounter_class_name(classify(params)) << ": closure " << horizontal_closure(params)
      << " m/s, own vs " << params.vs_own_mps << " m/s, intruder vs " << params.vs_int_mps
      << " m/s, intruder course " << rad_to_deg(wrap_pi(params.theta_int_rad))
      << " deg, CPA in " << params.t_cpa_s << " s (miss " << params.r_cpa_m << " m horiz, "
      << params.y_cpa_m << " m vert)";
  return out.str();
}

}  // namespace cav::core
