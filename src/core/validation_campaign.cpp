#include "core/validation_campaign.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "encounter/encounter.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {
namespace {

/// Deterministic equipage draw for intruder k of encounter i: a dedicated
/// stream per (seed, i, k), so the pattern is identical across policies,
/// thread counts, shard counts, and K growth, and no other draw shifts.
/// The boundary fractions never draw — 1.0 is the pre-fault
/// equip-everyone path.
bool intruder_equipped(const MonteCarloConfig& config, std::uint64_t seed,
                       std::size_t encounter_index, std::size_t intruder_index) {
  if (config.equipage_fraction >= 1.0) return true;
  if (config.equipage_fraction <= 0.0) return false;
  RngStream rng = RngStream::derive(seed, "mc-equipage", encounter_index, intruder_index);
  return rng.chance(config.equipage_fraction);
}

/// Equip one intruder slot: the intruder CAS when the equipage draw says
/// so, otherwise the configured unequipped behavior (passive, or the
/// scripted adversary that maneuvers toward the own-ship around its CPA).
void equip_intruder(const MonteCarloConfig& config, std::uint64_t seed,
                    std::size_t encounter_index, std::size_t intruder_index, double t_cpa_s,
                    const sim::CasFactory& intruder_cas, sim::AgentSetup* setup) {
  if (intruder_equipped(config, seed, encounter_index, intruder_index)) {
    if (intruder_cas) setup->cas = intruder_cas();
  } else if (config.unequipped_behavior == UnequippedBehavior::kManeuverAtCpa) {
    sim::ScriptedManeuverConfig script;
    script.start_s = std::max(0.0, t_cpa_s - 10.0);
    script.duration_s = 20.0;
    script.decision_period_s = config.sim.decision_period_s;
    setup->cas = std::make_unique<sim::ScriptedManeuverCas>(script);
    setup->count_alerts = false;  // attacks are not avoidance alerts
  }
  if (config.intruder_fault.has_value()) setup->fault = config.intruder_fault;
}

constexpr std::uint64_t kMcTag = 0x4D43'4D43ULL;  // "MCMC"

}  // namespace

ValidationCampaign::ValidationCampaign(const encounter::StatisticalEncounterModel& model,
                                       MonteCarloConfig config, std::string system_name,
                                       sim::CasFactory own_cas, sim::CasFactory intruder_cas)
    : model_(model),
      multi_model_(config.intruders, model.config()),
      config_(std::move(config)),
      system_name_(std::move(system_name)),
      own_cas_(std::move(own_cas)),
      intruder_cas_(std::move(intruder_cas)) {
  expect(config_.encounters >= 1, "encounters >= 1");
  expect(config_.intruders >= 1, "intruders >= 1");
  num_cells_ = std::min<std::size_t>(config_.encounters, 64);
}

std::vector<EncounterStripe> ValidationCampaign::make_stripes(std::size_t shards) const {
  expect(shards >= 1, "shards >= 1");
  std::vector<EncounterStripe> stripes;
  stripes.reserve(std::min(shards, num_cells_));
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t cell_lo = s * num_cells_ / shards;
    const std::size_t cell_hi = (s + 1) * num_cells_ / shards;
    if (cell_hi == cell_lo) continue;  // more shards than cells
    stripes.push_back({config_.seed, cell_begin(cell_lo), cell_begin(cell_hi)});
  }
  return stripes;
}

StripeResult ValidationCampaign::run_stripe(const EncounterStripe& stripe,
                                            ThreadPool* pool) const {
  expect(stripe.begin <= stripe.end && stripe.end <= config_.encounters,
         "stripe inside the encounter range");

  // The stripe's seed overrides the campaign seed for every draw.
  MonteCarloConfig config = config_;
  config.seed = stripe.seed;

  const auto run_pairwise = [&](std::size_t i, StripeCell& local) {
    // The geometry stream depends only on (seed, i): every system sees the
    // same traffic sample.
    RngStream geometry_rng = RngStream::derive(config.seed, "mc-geometry", i);
    const encounter::EncounterParams params = model_.sample(geometry_rng);
    const encounter::InitialStates init = encounter::generate_initial_states(params);

    sim::SimConfig sim_config = config.sim;
    sim_config.max_time_s = params.t_cpa_s + config.sim_time_margin_s;

    sim::AgentSetup own;
    own.initial_state = init.own;
    if (own_cas_) own.cas = own_cas_();
    if (config.own_fault.has_value()) own.fault = config.own_fault;
    sim::AgentSetup intruder;
    intruder.initial_state = init.intruder;
    equip_intruder(config, config.seed, i, /*intruder_index=*/0, params.t_cpa_s, intruder_cas_,
                   &intruder);

    const std::uint64_t sim_seed = mix64(config.seed ^ mix64(kMcTag ^ i));
    const sim::SimResult result =
        sim::run_encounter(sim_config, std::move(own), std::move(intruder), sim_seed);

    if (result.nmac) ++local.nmacs;
    if (result.own.ever_alerted || result.intruder.ever_alerted) ++local.alerts;
    local.sep_sum += result.proximity.min_distance_m;
    local.wall_s += result.wall_time_s;
  };

  const auto run_multi = [&](std::size_t i, StripeCell& local) {
    // Per-intruder geometry streams depend only on (seed, i, k): the
    // traffic sample is paired across systems and across thread counts,
    // and intruder k's geometry does not change when K grows.
    const encounter::MultiEncounterParams params = multi_model_.sample(config.seed, i);
    const std::vector<sim::UavState> states = encounter::generate_multi_initial_states(params);

    sim::SimConfig sim_config = config.sim;
    sim_config.max_time_s = params.max_t_cpa_s() + config.sim_time_margin_s;

    std::vector<sim::AgentSetup> agents(states.size());
    agents[0].initial_state = states[0];
    if (own_cas_) agents[0].cas = own_cas_();
    if (config.own_fault.has_value()) agents[0].fault = config.own_fault;
    for (std::size_t a = 1; a < states.size(); ++a) {
      agents[a].initial_state = states[a];
      equip_intruder(config, config.seed, i, a - 1, params.intruders[a - 1].t_cpa_s,
                     intruder_cas_, &agents[a]);
    }

    const std::uint64_t sim_seed = mix64(config.seed ^ mix64(kMcTag ^ i));
    const sim::SimResult result =
        sim::run_multi_encounter(sim_config, std::move(agents), sim_seed);

    if (result.own_nmac()) ++local.nmacs;
    bool any_alert = false;
    for (const sim::AgentReport& r : result.agents) any_alert = any_alert || r.ever_alerted;
    if (any_alert) ++local.alerts;
    local.sep_sum += result.own_min_separation_m();
    local.wall_s += result.wall_time_s;
  };

  // Locate the stripe's cells; the boundaries must be canonical.
  std::size_t first_cell = 0;
  while (first_cell < num_cells_ && cell_begin(first_cell) < stripe.begin) ++first_cell;
  expect(cell_begin(first_cell) == stripe.begin, "stripe.begin on a cell boundary");
  std::size_t end_cell = first_cell;
  while (end_cell < num_cells_ && cell_begin(end_cell) < stripe.end) ++end_cell;
  expect(cell_begin(end_cell) == stripe.end || (end_cell == num_cells_ &&
                                                stripe.end == config_.encounters),
         "stripe.end on a cell boundary");

  StripeResult result;
  result.first_cell = first_cell;
  result.cells.resize(end_cell - first_cell);

  const auto run_cell = [&](std::size_t c) {
    const std::size_t begin = cell_begin(first_cell + c);
    const std::size_t end = cell_begin(first_cell + c + 1);
    StripeCell local;  // accumulate on the stack; one write-back per cell
    for (std::size_t i = begin; i < end; ++i) {
      if (config.intruders == 1) {
        run_pairwise(i, local);
      } else {
        run_multi(i, local);
      }
    }
    result.cells[c] = local;
  };

  if (pool != nullptr) {
    pool->parallel_for(result.cells.size(), run_cell);
  } else {
    for (std::size_t c = 0; c < result.cells.size(); ++c) run_cell(c);
  }
  return result;
}

SystemRates ValidationCampaign::merge(const std::vector<StripeResult>& results) const {
  std::vector<const StripeResult*> ordered;
  ordered.reserve(results.size());
  for (const StripeResult& r : results) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const StripeResult* a, const StripeResult* b) {
              return a->first_cell < b->first_cell;
            });

  SystemRates rates;
  rates.system = system_name_;
  rates.encounters = config_.encounters;

  // The canonical flat merge: cells in index order, exactly the loop the
  // single-process path has always run — grouping-invariant by
  // construction, so shard count and completion order cannot perturb the
  // double sums.
  std::size_t next_cell = 0;
  double sep_sum = 0.0;
  for (const StripeResult* r : ordered) {
    expect(r->first_cell == next_cell, "stripe results tile the campaign");
    for (const StripeCell& c : r->cells) {
      rates.nmacs += c.nmacs;
      rates.alerts += c.alerts;
      sep_sum += c.sep_sum;
      rates.sim_wall_s += c.wall_s;
    }
    next_cell += r->cells.size();
  }
  expect(next_cell == num_cells_, "stripe results cover every cell");

  rates.mean_min_separation_m =
      config_.encounters ? sep_sum / static_cast<double>(config_.encounters) : 0.0;
  return rates;
}

CampaignResult ValidationCampaign::run(ThreadPool* pool) const {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  result.work_units = 1;
  result.rates =
      merge({run_stripe({config_.seed, 0, config_.encounters}, pool)});
  result.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace cav::core
