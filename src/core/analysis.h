// Analysis of discovered scenarios.
//
// §VII scrutinizes the high-fitness encounters by hand and finds "most of
// them are tail approach situations".  classify() mechanizes that geometric
// reading.  §VIII proposes extending the point-wise search to *areas* of
// the space via clustering of logged data — kmeans() is that extension.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "encounter/encounter.h"

namespace cav::core {

enum class EncounterClass {
  kHeadOn,        ///< reciprocal courses, intruder ahead
  kTailApproach,  ///< similar courses, small closure, opposite vertical senses
  kOvertake,      ///< similar courses, small closure, same/level vertical motion
  kCrossing,      ///< intermediate course difference
  kOther,
};

const char* encounter_class_name(EncounterClass c);

struct ClassifierThresholds {
  double head_on_course_diff_rad = 2.62;   ///< >150 deg apart
  double tail_course_diff_rad = 1.05;      ///< <60 deg apart
  /// Horizontal closure considered "slow".  The blind-spot family extends
  /// to ~15-20 m/s in the closure sweep (bench_tail_approach), so the
  /// default captures the full region, not only its dead center.
  double slow_closure_mps = 15.0;
  double opposite_vs_min_mps = 0.5;        ///< min |vs| for a climb/descend reading
};

/// Geometry-based label for an encounter parameterization.
EncounterClass classify(const encounter::EncounterParams& params,
                        const ClassifierThresholds& thresholds = {});

/// K-means over normalized parameter vectors (Lloyd's algorithm with
/// deterministic k-means++-style seeding from `seed`).
struct KmeansResult {
  std::vector<std::array<double, encounter::kNumParams>> centroids;
  std::vector<std::size_t> assignment;  ///< cluster index per input point
  std::vector<std::size_t> cluster_sizes;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroids
  std::size_t iterations = 0;
};

KmeansResult kmeans(const std::vector<encounter::EncounterParams>& points,
                    const encounter::ParamRanges& ranges, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations = 100);

/// Render a one-line description of an encounter ("tail approach, closure
/// 4.0 m/s, own descending 2.0 m/s, intruder climbing 2.0 m/s, CPA 45 s").
std::string describe(const encounter::EncounterParams& params);

}  // namespace cav::core
