#include "toy2d/toy2d_mdp.h"

#include <algorithm>
#include <sstream>

#include "mdp/value_iteration.h"
#include "util/expect.h"

namespace cav::toy2d {
namespace {

/// Intruder vertical displacements matching Config::intruder_probs order.
constexpr std::array<int, 5> kIntruderMoves{0, -1, +1, -2, +2};

}  // namespace

char action_glyph(Action a) {
  switch (a) {
    case Action::kLevel: return '.';
    case Action::kUp: return '^';
    case Action::kDown: return 'v';
  }
  return '?';
}

const char* action_name(Action a) {
  switch (a) {
    case Action::kLevel: return "level";
    case Action::kUp: return "up";
    case Action::kDown: return "down";
  }
  return "?";
}

Toy2dMdp::Toy2dMdp(const Config& config) : config_(config) {
  expect(config.x_max >= 1, "x_max >= 1");
  expect(config.y_max >= 1, "y_max >= 1");
  auto normalized = [](const auto& probs) {
    double sum = 0.0;
    for (const double p : probs) {
      if (p < 0.0) return false;
      sum += p;
    }
    return std::abs(sum - 1.0) < 1e-9;
  };
  expect(normalized(config.own_move_probs), "own_move_probs sum to 1");
  expect(normalized(config.own_level_probs), "own_level_probs sum to 1");
  expect(normalized(config.intruder_probs), "intruder_probs sum to 1");
}

std::size_t Toy2dMdp::num_states() const {
  const auto ny = static_cast<std::size_t>(config_.num_altitudes());
  const auto nx = static_cast<std::size_t>(config_.num_ranges());
  return ny * nx * ny;
}

mdp::State Toy2dMdp::encode(const GridState& g) const {
  const int ny = config_.num_altitudes();
  const int nx = config_.num_ranges();
  const int yo = g.y_own + config_.y_max;
  const int yi = g.y_int + config_.y_max;
  return static_cast<mdp::State>((yo * nx + g.x_rel) * ny + yi);
}

GridState Toy2dMdp::decode(mdp::State s) const {
  const int ny = config_.num_altitudes();
  const int nx = config_.num_ranges();
  GridState g;
  g.y_int = static_cast<int>(s) % ny - config_.y_max;
  const int rest = static_cast<int>(s) / ny;
  g.x_rel = rest % nx;
  g.y_own = rest / nx - config_.y_max;
  return g;
}

bool Toy2dMdp::is_collision(const GridState& g) const {
  return g.x_rel == 0 && g.y_own == g.y_int;
}

int Toy2dMdp::clamp_altitude(int y) const {
  return std::clamp(y, -config_.y_max, config_.y_max);
}

bool Toy2dMdp::is_terminal(mdp::State s) const { return decode(s).x_rel == 0; }

double Toy2dMdp::terminal_cost(mdp::State s) const {
  return is_collision(decode(s)) ? config_.collision_cost : 0.0;
}

double Toy2dMdp::cost(mdp::State, mdp::Action a) const {
  switch (static_cast<Action>(a)) {
    case Action::kLevel: return -config_.level_reward;
    case Action::kUp:
    case Action::kDown: return config_.maneuver_cost;
  }
  return 0.0;
}

void Toy2dMdp::transitions(mdp::State s, mdp::Action a, std::vector<mdp::Transition>& out) const {
  const GridState g = decode(s);
  expect(g.x_rel > 0, "transitions only defined for non-terminal states");

  // Own-ship displacement distribution for the chosen action.
  std::array<std::pair<int, double>, 3> own;
  switch (static_cast<Action>(a)) {
    case Action::kUp:
      own = {{{+1, config_.own_move_probs[0]},
              {0, config_.own_move_probs[1]},
              {-1, config_.own_move_probs[2]}}};
      break;
    case Action::kDown:
      own = {{{-1, config_.own_move_probs[0]},
              {0, config_.own_move_probs[1]},
              {+1, config_.own_move_probs[2]}}};
      break;
    case Action::kLevel:
      own = {{{0, config_.own_level_probs[0]},
              {+1, config_.own_level_probs[1]},
              {-1, config_.own_level_probs[2]}}};
      break;
  }

  // Product of the two independent displacement distributions; clamping at
  // the grid boundary can merge outcomes, so accumulate by next state.
  // 3 x 5 = 15 raw outcomes at most.
  for (const auto& [dy_own, p_own] : own) {
    if (p_own == 0.0) continue;
    for (std::size_t k = 0; k < kIntruderMoves.size(); ++k) {
      const double p = p_own * config_.intruder_probs[k];
      if (p == 0.0) continue;
      GridState next;
      next.y_own = clamp_altitude(g.y_own + dy_own);
      next.y_int = clamp_altitude(g.y_int + kIntruderMoves[k]);
      next.x_rel = g.x_rel - 1;
      const mdp::State ns = encode(next);
      auto it = std::find_if(out.begin(), out.end(),
                             [ns](const mdp::Transition& t) { return t.next == ns; });
      if (it == out.end()) {
        out.push_back({ns, p});
      } else {
        it->prob += p;
      }
    }
  }
}

PolicyTable::PolicyTable(const Toy2dMdp& model, mdp::Policy policy, mdp::Values values)
    : model_(model), policy_(std::move(policy)), values_(std::move(values)) {
  expect(policy_.size() == model_.num_states(), "policy covers the state space");
  expect(values_.size() == model_.num_states(), "values cover the state space");
}

Action PolicyTable::action_for(const GridState& g) const {
  return static_cast<Action>(policy_[model_.encode(g)]);
}

double PolicyTable::value_for(const GridState& g) const {
  return values_[model_.encode(g)];
}

std::string PolicyTable::render_slice(int y_int) const {
  const Config& c = model_.config();
  std::ostringstream out;
  out << "policy slice (intruder altitude y_i = " << y_int
      << "; rows: own altitude top=+" << c.y_max << ", cols: x_r = 0.." << c.x_max
      << "; '.'=level '^'=up 'v'=down)\n";
  for (int yo = c.y_max; yo >= -c.y_max; --yo) {
    out << (yo >= 0 ? " +" : " ") << yo << " | ";
    for (int xr = 0; xr <= c.x_max; ++xr) {
      const GridState g{yo, xr, y_int};
      if (xr == 0) {
        out << (model_.is_collision(g) ? 'X' : 'o');
      } else {
        out << action_glyph(action_for(g));
      }
    }
    out << '\n';
  }
  return out.str();
}

PolicyTable solve(const Toy2dMdp& model, ThreadPool* pool) {
  mdp::ValueIterationConfig config;
  config.discount = 1.0;  // episodic: x_r strictly decreases to the terminal layer
  config.gauss_seidel = false;
  config.pool = pool;
  auto result = mdp::solve_value_iteration(model, config);
  ensure(result.converged, "toy2d value iteration converged");
  return PolicyTable(model, std::move(result.policy), std::move(result.values));
}

}  // namespace cav::toy2d
