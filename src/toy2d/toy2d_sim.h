// Closed-loop Monte-Carlo rollout of the §III grid model: "The resultant
// logic can be evaluated in simulations" — this is that evaluation, used by
// tests and by bench_toy2d_policy to show the generated table actually
// avoids collisions while mostly flying level.
#pragma once

#include <cstdint>
#include <vector>

#include "toy2d/toy2d_mdp.h"
#include "util/rng.h"

namespace cav::toy2d {

/// A controller for the grid world.  TablePolicy wraps the generated logic
/// table; AlwaysLevel is the unequipped baseline.
class Controller {
 public:
  virtual ~Controller() = default;
  virtual Action act(const GridState& state) const = 0;
};

class TablePolicy final : public Controller {
 public:
  explicit TablePolicy(const PolicyTable& table) : table_(&table) {}
  Action act(const GridState& state) const override { return table_->action_for(state); }

 private:
  const PolicyTable* table_;  // non-owning
};

class AlwaysLevel final : public Controller {
 public:
  Action act(const GridState&) const override { return Action::kLevel; }
};

/// Outcome of one episode.
struct Rollout {
  bool collided = false;
  int maneuver_steps = 0;             ///< steps where the action was up/down
  double total_cost = 0.0;            ///< accumulated MDP cost incl. terminal
  std::vector<GridState> trajectory;  ///< state at each step (incl. initial)
};

/// Simulate one episode from `start` under `controller`, sampling the MDP's
/// own dynamics (so the simulation and the model agree by construction).
Rollout rollout(const Toy2dMdp& model, const Controller& controller, const GridState& start,
                RngStream& rng);

/// Aggregate collision statistics over `episodes` rollouts.
struct EvalSummary {
  std::size_t episodes = 0;
  std::size_t collisions = 0;
  double mean_maneuver_steps = 0.0;
  double mean_cost = 0.0;

  double collision_rate() const {
    return episodes ? static_cast<double>(collisions) / static_cast<double>(episodes) : 0.0;
  }
};

EvalSummary evaluate(const Toy2dMdp& model, const Controller& controller, const GridState& start,
                     std::size_t episodes, std::uint64_t seed);

}  // namespace cav::toy2d
