#include "toy2d/toy2d_sim.h"

#include <array>

#include "util/expect.h"

namespace cav::toy2d {
namespace {

constexpr std::array<int, 5> kIntruderMoves{0, -1, +1, -2, +2};

int sample_own_displacement(const Config& config, Action a, RngStream& rng) {
  if (a == Action::kLevel) {
    const int k = rng.discrete(config.own_level_probs);
    return std::array<int, 3>{0, +1, -1}[static_cast<std::size_t>(k)];
  }
  const int k = rng.discrete(config.own_move_probs);
  const int intended = (a == Action::kUp) ? +1 : -1;
  switch (k) {
    case 0: return intended;
    case 1: return 0;
    default: return -intended;
  }
}

}  // namespace

Rollout rollout(const Toy2dMdp& model, const Controller& controller, const GridState& start,
                RngStream& rng) {
  expect(start.x_rel >= 0 && start.x_rel <= model.config().x_max, "start x_rel on the grid");
  const Config& config = model.config();

  Rollout result;
  GridState s{model.clamp_altitude(start.y_own), start.x_rel, model.clamp_altitude(start.y_int)};
  result.trajectory.push_back(s);

  while (s.x_rel > 0) {
    const Action a = controller.act(s);
    result.total_cost += model.cost(model.encode(s), static_cast<mdp::Action>(a));
    if (a != Action::kLevel) ++result.maneuver_steps;

    s.y_own = model.clamp_altitude(s.y_own + sample_own_displacement(config, a, rng));
    s.y_int = model.clamp_altitude(s.y_int + kIntruderMoves[static_cast<std::size_t>(
                                                 rng.discrete(config.intruder_probs))]);
    s.x_rel -= 1;
    result.trajectory.push_back(s);
  }

  result.collided = model.is_collision(s);
  if (result.collided) result.total_cost += config.collision_cost;
  return result;
}

EvalSummary evaluate(const Toy2dMdp& model, const Controller& controller, const GridState& start,
                     std::size_t episodes, std::uint64_t seed) {
  EvalSummary summary;
  summary.episodes = episodes;
  double maneuver_sum = 0.0;
  double cost_sum = 0.0;
  for (std::size_t k = 0; k < episodes; ++k) {
    RngStream rng = RngStream::derive(seed, "toy2d-eval", k);
    const Rollout r = rollout(model, controller, start, rng);
    if (r.collided) ++summary.collisions;
    maneuver_sum += r.maneuver_steps;
    cost_sum += r.total_cost;
  }
  if (episodes > 0) {
    summary.mean_maneuver_steps = maneuver_sum / static_cast<double>(episodes);
    summary.mean_cost = cost_sum / static_cast<double>(episodes);
  }
  return summary;
}

}  // namespace cav::toy2d
