// The paper's §III worked example: a two-UAV encounter in a 2-D vertical
// plane, modelled as a finite MDP and solved by dynamic programming.
//
// State: {y_o, x_r, y_i} where y_o is the own-ship altitude, x_r the
// relative horizontal distance (also the intruder's x coordinate, since the
// own-ship's horizontal movement is folded into the intruder's), and y_i
// the intruder altitude.  Each time step the intruder moves left one grid.
//
// Actions (own-ship, vertical only): level off (0), move up (+1),
// move down (-1).
//
// Paper-given stochastics:
//   * own-ship "move up": lands at +1 with 0.7, +0 with 0.2, -1 with 0.1
//     (mirrored for "move down"; "level off" uses the analogous
//     distribution centred on 0 — the paper says "similar distribution
//     applies", we use {0 -> 0.7, +1 -> 0.15, -1 -> 0.15});
//   * intruder vertical white noise: {0 -> 0.5, -1 -> 0.15, +1 -> 0.15,
//     -2 -> 0.1, +2 -> 0.1}.
//
// Paper-given preferences: collision (y_o == y_i and x_r == 0) costs 10000,
// a move up/down action costs 100, level off is rewarded 50 (cost -50).
//
// Altitudes are clamped to [-y_max, y_max] (probability mass that would
// leave the grid collapses onto the boundary row), keeping the state space
// finite as the figure suggests.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "mdp/mdp.h"

namespace cav {
class ThreadPool;
}

namespace cav::toy2d {

enum class Action : int { kLevel = 0, kUp = 1, kDown = 2 };
inline constexpr std::size_t kNumActions = 3;

/// Display glyphs: level '.', up '^', down 'v'.
char action_glyph(Action a);
const char* action_name(Action a);

struct Config {
  int x_max = 9;  ///< intruder starts at x_r = x_max (Fig. 2 grid)
  int y_max = 3;  ///< altitude grid spans [-y_max, +y_max]

  double collision_cost = 10000.0;  ///< paper: "punish a collision state ... 10000"
  double maneuver_cost = 100.0;     ///< paper: "punish a move up/down action ... 100"
  double level_reward = 50.0;       ///< paper: "reward a level off action ... 50"

  /// P(own displacement | action): index 0 -> intended direction,
  /// 1 -> no move, 2 -> opposite direction.  Paper: {0.7, 0.2, 0.1}.
  std::array<double, 3> own_move_probs{0.7, 0.2, 0.1};
  /// Level-off: {stay, +1, -1}.
  std::array<double, 3> own_level_probs{0.7, 0.15, 0.15};

  /// Intruder vertical displacement distribution over {0, -1, +1, -2, +2}.
  std::array<double, 5> intruder_probs{0.5, 0.15, 0.15, 0.1, 0.1};

  int num_altitudes() const { return 2 * y_max + 1; }
  int num_ranges() const { return x_max + 1; }
};

/// Grid state in user coordinates.
struct GridState {
  int y_own = 0;
  int x_rel = 0;
  int y_int = 0;

  bool operator==(const GridState&) const = default;
};

/// The §III MDP.  States are dense-indexed; x_r == 0 states are terminal
/// (the encounter has resolved: collision iff y_o == y_i).
class Toy2dMdp final : public mdp::FiniteMdp {
 public:
  explicit Toy2dMdp(const Config& config);

  std::size_t num_states() const override;
  std::size_t num_actions() const override { return kNumActions; }
  double cost(mdp::State s, mdp::Action a) const override;
  void transitions(mdp::State s, mdp::Action a, std::vector<mdp::Transition>& out) const override;
  bool is_terminal(mdp::State s) const override;
  double terminal_cost(mdp::State s) const override;

  const Config& config() const { return config_; }

  mdp::State encode(const GridState& g) const;
  GridState decode(mdp::State s) const;

  /// True when the state is a collision (x_r == 0 and equal altitudes).
  bool is_collision(const GridState& g) const;

  /// Clamp an altitude to the grid.
  int clamp_altitude(int y) const;

 private:
  Config config_;
};

/// The generated "logic table": the optimal action for every state, the
/// paper's look-up-table representation of the avoidance strategy.
class PolicyTable {
 public:
  PolicyTable(const Toy2dMdp& model, mdp::Policy policy, mdp::Values values);

  Action action_for(const GridState& g) const;
  double value_for(const GridState& g) const;

  /// Render the policy slice for a fixed intruder altitude: rows are own
  /// altitudes (top = +y_max), columns are x_r = 0..x_max.
  std::string render_slice(int y_int) const;

  const mdp::Policy& policy() const { return policy_; }
  const mdp::Values& values() const { return values_; }
  const Toy2dMdp& model() const { return model_; }

 private:
  Toy2dMdp model_;  // the model is cheap (config only); owning a copy keeps the table self-contained
  mdp::Policy policy_;
  mdp::Values values_;
};

/// Solve the model with value iteration (compiled CSR kernel) and wrap the
/// result.  A ThreadPool parallelizes the Jacobi sweeps; results are
/// identical with or without one.
PolicyTable solve(const Toy2dMdp& model, ThreadPool* pool = nullptr);

}  // namespace cav::toy2d
