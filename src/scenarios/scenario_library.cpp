#include "scenarios/scenario_library.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/angles.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::scenarios {
namespace {

encounter::IntruderGeometry conflict_geometry(double t_cpa_s, double gs_mps, double course_rad,
                                              double vs_mps) {
  encounter::IntruderGeometry g;
  g.t_cpa_s = t_cpa_s;
  g.r_cpa_m = 0.0;
  g.theta_cpa_rad = 0.0;
  g.y_cpa_m = 0.0;
  g.gs_mps = gs_mps;
  g.course_rad = wrap_pi(course_rad);
  g.vs_mps = vs_mps;
  return g;
}

}  // namespace

Scenario head_on(std::size_t intruders) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "head-on";
  s.params.gs_own_mps = 40.0;
  s.params.vs_own_mps = 0.0;
  // A fan of reciprocal-ish courses (spread 0.35 rad per slot around pi)
  // at staggered CPA times, so every intruder is a genuine nose-on threat
  // to the own-ship but the intruders do not collide with each other.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double offset =
        0.35 * (static_cast<double>(k) - static_cast<double>(intruders - 1) / 2.0);
    s.params.intruders.push_back(
        conflict_geometry(40.0 + 6.0 * static_cast<double>(k), 40.0, kPi + offset, 0.0));
  }
  return s;
}

Scenario crossing(std::size_t intruders) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "crossing";
  s.params.gs_own_mps = 35.0;
  s.params.vs_own_mps = 0.0;
  // Perpendicular crossers alternating from the left and the right, each
  // aimed at the own-ship's position at its own staggered CPA time.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double course = (k % 2 == 0) ? kPi / 2.0 : -kPi / 2.0;
    s.params.intruders.push_back(
        conflict_geometry(40.0 + 8.0 * static_cast<double>(k), 35.0, course, 0.0));
  }
  return s;
}

Scenario overtake() {
  Scenario s;
  s.name = "overtake";
  // The challenging family the paper's GA found (Figs. 7-8): descending
  // own-ship overtaken slowly from behind by a climbing intruder — tiny
  // closure rate, so tau-based alerting stays silent.
  s.params = encounter::MultiEncounterParams::from_pairwise(encounter::tail_approach());
  return s;
}

Scenario converging_ring(std::size_t intruders, double t_cpa_s) {
  expect(intruders >= 1, "at least one intruder");
  expect(t_cpa_s > 0.0, "t_cpa_s > 0");
  Scenario s;
  s.name = "converging-ring";
  s.params.gs_own_mps = 35.0;
  s.params.vs_own_mps = 0.0;
  // K intruders evenly spread on a ring of radius gs * T, all converging
  // on the own-ship's CPA position at the same time.  Courses start at
  // pi/K so no intruder flies exactly the own-ship's (or a reciprocal)
  // course, keeping every geometry distinct.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double course =
        kPi / static_cast<double>(intruders) +
        2.0 * kPi * static_cast<double>(k) / static_cast<double>(intruders);
    s.params.intruders.push_back(conflict_geometry(t_cpa_s, 35.0, course, 0.0));
  }
  return s;
}

Scenario high_density_random(std::size_t intruders, std::uint64_t seed) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "high-density";
  const encounter::MultiEncounterModel model(intruders);
  s.params = model.sample(seed, /*encounter_index=*/0);
  return s;
}

Scenario city_corridors(std::size_t aircraft, std::uint64_t seed) {
  expect(aircraft >= 2, "at least two aircraft");
  Scenario s;
  s.name = "city-corridors";
  s.horizon_s = 120.0;
  // Manhattan grid of one-way corridors.  Eastbound lanes fly 1000 m,
  // northbound lanes 1015 m — inside the NMAC vertical band, so every
  // lane crossing is a conflict the CAS must price.  Lane count scales
  // with sqrt(K/2) per axis so per-lane headway and crossing density stay
  // roughly constant as the fleet grows; the 2 km lane spacing matches
  // the interaction radius city configs use.
  constexpr double kLaneSpacingM = 2000.0;
  const auto lanes_per_axis = static_cast<std::size_t>(
      std::max(2.0, std::ceil(std::sqrt(static_cast<double>(aircraft) / 2.0))));
  const double extent_m = kLaneSpacingM * static_cast<double>(lanes_per_axis);
  s.explicit_states.reserve(aircraft);
  for (std::size_t k = 0; k < aircraft; ++k) {
    // One stream per aircraft: aircraft k's draws never depend on how many
    // other aircraft exist (lane geometry does scale with the fleet).
    RngStream rng = RngStream::derive(seed, "city", k);
    const bool eastbound = (k % 2 == 0);
    const std::size_t lane = (k / 2) % lanes_per_axis;
    const double cross_m = kLaneSpacingM * static_cast<double>(lane);
    const double along_m = extent_m * rng.uniform(0.0, 1.0);
    sim::UavState state;
    state.ground_speed_mps = rng.uniform(30.0, 45.0);
    state.vertical_speed_mps = 0.0;
    if (eastbound) {
      state.position_m = {along_m, cross_m, 1000.0};
      state.bearing_rad = 0.0;
    } else {
      state.position_m = {cross_m, along_m, 1015.0};
      state.bearing_rad = kPi / 2.0;
    }
    s.explicit_states.push_back(state);
  }
  return s;
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "head-on", "crossing", "overtake", "converging-ring", "high-density",
      "city-corridors"};
  return names;
}

Scenario make_scenario(std::string_view name, std::size_t intruders, std::uint64_t seed) {
  if (name == "head-on") return head_on(intruders == 0 ? 1 : intruders);
  if (name == "crossing") return crossing(intruders == 0 ? 1 : intruders);
  if (name == "overtake") {
    // Single-intruder family: a silent fallback would mislabel density
    // sweeps that pass K > 1 for every name.
    expect(intruders <= 1, "overtake is a single-intruder family");
    return overtake();
  }
  if (name == "converging-ring") return converging_ring(intruders == 0 ? 4 : intruders);
  if (name == "high-density") return high_density_random(intruders == 0 ? 8 : intruders, seed);
  if (name == "city-corridors") return city_corridors(intruders == 0 ? 256 : intruders, seed);
  expect(false, "unknown scenario family name");
  return {};  // unreachable
}

sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed) {
  return run_scenario(scenario, std::move(config), own_cas, intruder_cas, seed,
                      ScenarioEquipage{});
}

sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed, const ScenarioEquipage& equipage) {
  const std::vector<sim::UavState> states = scenario.initial_states();
  std::vector<sim::AgentSetup> agents(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    agents[i].initial_state = states[i];
    if (i == 0) {
      if (own_cas) agents[i].cas = own_cas();
      if (equipage.own_fault.has_value()) agents[i].fault = equipage.own_fault;
      continue;
    }
    // Equipage draw from a dedicated (seed, slot) stream: the boundary
    // fractions never draw, and the simulation's own streams are untouched
    // either way, so the fully-equipped default stays bit-identical to the
    // historical path.
    bool equipped = true;
    if (equipage.equipage_fraction <= 0.0) {
      equipped = false;
    } else if (equipage.equipage_fraction < 1.0) {
      RngStream rng = RngStream::derive(seed, "scn-equipage", i - 1);
      equipped = rng.chance(equipage.equipage_fraction);
    }
    if (equipped) {
      if (intruder_cas) agents[i].cas = intruder_cas();
    } else if (equipage.adversarial_unequipped) {
      sim::ScriptedManeuverConfig maneuver;
      // Explicit-state scenarios carry no per-intruder CPA time; bust
      // through mid-horizon instead.
      const double t_cpa_s = i - 1 < scenario.params.intruders.size()
                                 ? scenario.params.intruders[i - 1].t_cpa_s
                                 : scenario.suggested_time_s() / 2.0;
      maneuver.start_s = std::max(0.0, t_cpa_s - 10.0);
      maneuver.duration_s = 20.0;
      maneuver.decision_period_s = config.decision_period_s;
      agents[i].cas = std::make_unique<sim::ScriptedManeuverCas>(maneuver);
      agents[i].count_alerts = false;
    }
    if (equipage.intruder_fault.has_value()) agents[i].fault = equipage.intruder_fault;
  }
  config.max_time_s = scenario.suggested_time_s();
  return sim::run_multi_encounter(config, std::move(agents), seed);
}

namespace {

/// Rebuild a GA-found geometry from its gene vector (to_vector order:
/// 2 own genes then 7 per intruder), exactly as the campaign logged it.
Scenario degraded_geometry(std::string name, const std::vector<double>& genes) {
  Scenario s;
  s.name = std::move(name);
  s.params = encounter::MultiEncounterParams::from_vector(genes);
  return s;
}

}  // namespace

DegradedScenario ga_blackout_pincer() {
  DegradedScenario d;
  // Frozen from search_degraded_multi_scenarios (K=2, kJointTable own-ship,
  // GA seed 606): a slow own-ship pinched between a fast crosser (CPA 33 s)
  // and a slow close-aboard threat (CPA 29 s), with a 21.5 s comms blackout
  // covering both resolution windows on top of heavy link loss, bursts, and
  // ADS-B dropout.  At the pinned seed the degraded run is an own-NMAC
  // under all three threat policies while the fault-free control resolves
  // cleanly under the joint table — the degradation, not the geometry, is
  // what defeats the strongest policy (asserted in test_scenarios.cpp).
  d.scenario = degraded_geometry(
      "ga-blackout-pincer",
      {/*gs_own*/ 22.467, /*vs_own*/ -3.521,
       /*intruder 1 (T R theta Y Gs course Vs)*/
       32.868, 94.365, 2.195, -52.446, 53.142, 1.253, 3.535,
       /*intruder 2*/ 28.968, 23.985, -1.298, 7.610, 19.558, -0.080, 4.836});
  d.coordination.message_loss_prob = 0.57;
  d.coordination.burst_enter_prob = 0.15;
  d.fault.comms_blackouts.push_back({/*start_s=*/14.8, /*end_s=*/14.8 + 21.5});
  d.fault.adsb_dropout_burst_prob = 0.25;
  d.fault.adsb_burst_continue_prob = 0.6;  // DegradedConditions::kBurstContinueProb
  d.seed = 1;
  return d;
}

DegradedScenario ga_burst_stale_overtake() {
  DegradedScenario d;
  // Frozen from the same campaign (GA seed 707): a very slow own-ship
  // overtaken from astern by a slightly-faster co-course threat (CPA 38 s)
  // while a fast crosser converges (CPA 44 s), under the heaviest ADS-B
  // dropout the gene range allows (bursts cover ~half the cycles) plus
  // bursty link loss and a short late blackout.  Of all campaign findings
  // this one's outcome depends most on
  // the faults: fault-free it is a 2/10-seed NMAC geometry under the joint
  // table, degraded it is 6/10.  The 8 s staleness horizon is added on top
  // of the found conditions so the fixture also exercises the coast-limit
  // path — the GA had no horizon gene.
  d.scenario = degraded_geometry(
      "ga-burst-stale-overtake",
      {/*gs_own*/ 16.433, /*vs_own*/ 0.542,
       /*intruder 1 (T R theta Y Gs course Vs)*/
       43.665, 105.301, 1.957, 12.566, 52.752, 1.407, 4.340,
       /*intruder 2*/ 38.176, 52.899, -0.256, 10.460, 23.327, -0.187, -4.673});
  d.coordination.message_loss_prob = 0.33;
  d.coordination.burst_enter_prob = 0.27;
  d.fault.comms_blackouts.push_back({/*start_s=*/30.9, /*end_s=*/30.9 + 7.3});
  d.fault.adsb_dropout_burst_prob = 0.40;
  d.fault.adsb_burst_continue_prob = 0.6;  // DegradedConditions::kBurstContinueProb
  d.fault.track_staleness_horizon_s = 8.0;
  d.seed = 4;
  return d;
}

const std::vector<std::string>& degraded_scenario_names() {
  static const std::vector<std::string> names = {"ga-blackout-pincer",
                                                 "ga-burst-stale-overtake"};
  return names;
}

DegradedScenario make_degraded_scenario(std::string_view name) {
  if (name == "ga-blackout-pincer") return ga_blackout_pincer();
  if (name == "ga-burst-stale-overtake") return ga_burst_stale_overtake();
  expect(false, "unknown degraded scenario name");
  return {};  // unreachable
}

sim::SimResult run_degraded_scenario(const DegradedScenario& degraded, sim::SimConfig config,
                                     const sim::CasFactory& own_cas,
                                     const sim::CasFactory& intruder_cas,
                                     const ScenarioEquipage& equipage) {
  config.coordination = degraded.coordination;
  config.fault = degraded.fault;
  return run_scenario(degraded.scenario, std::move(config), own_cas, intruder_cas,
                      degraded.seed, equipage);
}

}  // namespace cav::scenarios
