#include "scenarios/scenario_library.h"

#include "util/angles.h"
#include "util/expect.h"

namespace cav::scenarios {
namespace {

encounter::IntruderGeometry conflict_geometry(double t_cpa_s, double gs_mps, double course_rad,
                                              double vs_mps) {
  encounter::IntruderGeometry g;
  g.t_cpa_s = t_cpa_s;
  g.r_cpa_m = 0.0;
  g.theta_cpa_rad = 0.0;
  g.y_cpa_m = 0.0;
  g.gs_mps = gs_mps;
  g.course_rad = wrap_pi(course_rad);
  g.vs_mps = vs_mps;
  return g;
}

}  // namespace

Scenario head_on(std::size_t intruders) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "head-on";
  s.params.gs_own_mps = 40.0;
  s.params.vs_own_mps = 0.0;
  // A fan of reciprocal-ish courses (spread 0.35 rad per slot around pi)
  // at staggered CPA times, so every intruder is a genuine nose-on threat
  // to the own-ship but the intruders do not collide with each other.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double offset =
        0.35 * (static_cast<double>(k) - static_cast<double>(intruders - 1) / 2.0);
    s.params.intruders.push_back(
        conflict_geometry(40.0 + 6.0 * static_cast<double>(k), 40.0, kPi + offset, 0.0));
  }
  return s;
}

Scenario crossing(std::size_t intruders) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "crossing";
  s.params.gs_own_mps = 35.0;
  s.params.vs_own_mps = 0.0;
  // Perpendicular crossers alternating from the left and the right, each
  // aimed at the own-ship's position at its own staggered CPA time.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double course = (k % 2 == 0) ? kPi / 2.0 : -kPi / 2.0;
    s.params.intruders.push_back(
        conflict_geometry(40.0 + 8.0 * static_cast<double>(k), 35.0, course, 0.0));
  }
  return s;
}

Scenario overtake() {
  Scenario s;
  s.name = "overtake";
  // The challenging family the paper's GA found (Figs. 7-8): descending
  // own-ship overtaken slowly from behind by a climbing intruder — tiny
  // closure rate, so tau-based alerting stays silent.
  s.params = encounter::MultiEncounterParams::from_pairwise(encounter::tail_approach());
  return s;
}

Scenario converging_ring(std::size_t intruders, double t_cpa_s) {
  expect(intruders >= 1, "at least one intruder");
  expect(t_cpa_s > 0.0, "t_cpa_s > 0");
  Scenario s;
  s.name = "converging-ring";
  s.params.gs_own_mps = 35.0;
  s.params.vs_own_mps = 0.0;
  // K intruders evenly spread on a ring of radius gs * T, all converging
  // on the own-ship's CPA position at the same time.  Courses start at
  // pi/K so no intruder flies exactly the own-ship's (or a reciprocal)
  // course, keeping every geometry distinct.
  for (std::size_t k = 0; k < intruders; ++k) {
    const double course =
        kPi / static_cast<double>(intruders) +
        2.0 * kPi * static_cast<double>(k) / static_cast<double>(intruders);
    s.params.intruders.push_back(conflict_geometry(t_cpa_s, 35.0, course, 0.0));
  }
  return s;
}

Scenario high_density_random(std::size_t intruders, std::uint64_t seed) {
  expect(intruders >= 1, "at least one intruder");
  Scenario s;
  s.name = "high-density";
  const encounter::MultiEncounterModel model(intruders);
  s.params = model.sample(seed, /*encounter_index=*/0);
  return s;
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "head-on", "crossing", "overtake", "converging-ring", "high-density"};
  return names;
}

Scenario make_scenario(std::string_view name, std::size_t intruders, std::uint64_t seed) {
  if (name == "head-on") return head_on(intruders == 0 ? 1 : intruders);
  if (name == "crossing") return crossing(intruders == 0 ? 1 : intruders);
  if (name == "overtake") {
    // Single-intruder family: a silent fallback would mislabel density
    // sweeps that pass K > 1 for every name.
    expect(intruders <= 1, "overtake is a single-intruder family");
    return overtake();
  }
  if (name == "converging-ring") return converging_ring(intruders == 0 ? 4 : intruders);
  if (name == "high-density") return high_density_random(intruders == 0 ? 8 : intruders, seed);
  expect(false, "unknown scenario family name");
  return {};  // unreachable
}

sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed) {
  const std::vector<sim::UavState> states = scenario.initial_states();
  std::vector<sim::AgentSetup> agents(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    agents[i].initial_state = states[i];
    const sim::CasFactory& factory = (i == 0) ? own_cas : intruder_cas;
    if (factory) agents[i].cas = factory();
  }
  config.max_time_s = scenario.suggested_time_s();
  return sim::run_multi_encounter(config, std::move(agents), seed);
}

}  // namespace cav::scenarios
