// Named multi-aircraft scenario library.
//
// The paper's validation loop stresses the CAS with Monte-Carlo traffic
// and GA-found worst cases; this library adds the curated axis: named,
// parameterized encounter families that benches, examples, and density
// studies can call up by name.  Every scenario is expressed in the CPA
// parameterization (encounter/multi_encounter.h), so the same geometry
// feeds the simulator, the GA seeds, and reporting.
//
// Families:
//   head-on          K intruders converging nose-on from a fan of
//                    bearings at staggered CPA times (Fig. 5 scaled up)
//   crossing         perpendicular crossers alternating left/right
//   overtake         the GA's challenging tail approach (Figs. 7-8): slow
//                    overtake with a climb through the own-ship's altitude
//   converging-ring  K intruders evenly spread on a ring, all converging
//                    on the own-ship at the same CPA time (the headline
//                    multi-UAV stress case, Wang et al. arXiv:2005.14455)
//   high-density     K intruders sampled from the statistical encounter
//                    model (density-sweep workload, arXiv:1602.04762)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "encounter/multi_encounter.h"
#include "sim/cas.h"
#include "sim/faults.h"
#include "sim/simulation.h"

namespace cav::scenarios {

struct Scenario {
  std::string name;  ///< family name ("head-on", "converging-ring", ...)
  encounter::MultiEncounterParams params;  ///< the full (2 + 7K)-gene geometry
  /// When non-empty these states ARE the scenario: initial_states()
  /// returns them verbatim and the CPA parameterization is ignored.
  /// City-scale traffic (city_corridors) uses this — hundreds of aircraft
  /// have no own-ship-centric (2 + 7K)-gene encoding.
  std::vector<sim::UavState> explicit_states;
  /// Simulation horizon for explicit-state scenarios (ignored when
  /// explicit_states is empty).
  double horizon_s = 0.0;

  std::size_t num_aircraft() const {
    return explicit_states.empty() ? params.num_intruders() + 1 : explicit_states.size();
  }
  /// Simulation horizon: every intruder's CPA plus settle time, or the
  /// explicit horizon for explicit-state scenarios.
  double suggested_time_s() const {
    return explicit_states.empty() ? params.max_t_cpa_s() + 45.0 : horizon_s;
  }
  /// Initial states [own, intruder 1..K] (or the explicit states).
  std::vector<sim::UavState> initial_states() const {
    return explicit_states.empty() ? encounter::generate_multi_initial_states(params)
                                   : explicit_states;
  }
};

Scenario head_on(std::size_t intruders = 1);
Scenario crossing(std::size_t intruders = 1);
Scenario overtake();
Scenario converging_ring(std::size_t intruders = 4, double t_cpa_s = 40.0);
Scenario high_density_random(std::size_t intruders = 8, std::uint64_t seed = 2016);

/// City-scale corridor traffic: `aircraft` UAVs on a Manhattan grid of
/// one-way corridors (2 km lane spacing), eastbound lanes at 1000 m and
/// northbound lanes 15 m above — inside the NMAC vertical band, so every
/// lane crossing is a live conflict.  Lane count scales with sqrt(K) to
/// hold crossing density roughly constant as the scenario grows; spawn
/// positions and speeds jitter from per-aircraft (seed, "city", k)
/// streams.  The workload behind bench_airspace_scale (E16): pair
/// interactions are local, so the spatial index should keep the cost of a
/// decision cycle O(near pairs), not O(K^2).  Pair with an
/// AirspaceConfig whose interaction_radius_m matches the 2 km lane
/// spacing — the 25 km default degrades the index to all-pairs here.
Scenario city_corridors(std::size_t aircraft = 256, std::uint64_t seed = 2016);

/// The family names accepted by make_scenario, in presentation order.
const std::vector<std::string>& scenario_names();

/// Build a scenario by family name.  `intruders == 0` means the family
/// default (1, 1, 1, 4, 8, 256 respectively); `seed` affects high-density
/// and city-corridors (for city-corridors, `intruders` counts the whole
/// fleet, not intruders).
/// `overtake` is a fixed single-intruder geometry and rejects K > 1.
Scenario make_scenario(std::string_view name, std::size_t intruders = 0,
                       std::uint64_t seed = 2016);

/// Mixed-fleet options for run_scenario.  The defaults reproduce the
/// historical behavior exactly (every intruder equipped, no per-agent
/// faults, no draws consumed), so the equipage-taking overload with a
/// default-constructed ScenarioEquipage is bit-identical to the plain one.
struct ScenarioEquipage {
  /// Fraction of intruders carrying `intruder_cas`.  Boundary values never
  /// draw; in between, each intruder slot draws from a dedicated
  /// (seed, "scn-equipage", slot) stream so the simulation streams are
  /// untouched and runs stay paired across policies.
  double equipage_fraction = 1.0;
  /// When true, unequipped intruders fly a scripted bust through the
  /// own-ship's altitude around their CPA time (sim::ScriptedManeuverCas)
  /// instead of passive straight-line flight.  Scripted agents do not
  /// count toward alert statistics.
  bool adversarial_unequipped = false;
  /// Per-agent fault profiles; unset means inherit config.fault.
  std::optional<sim::FaultProfile> own_fault;
  std::optional<sim::FaultProfile> intruder_fault;
};

/// Equip and run: aircraft 0 gets `own_cas`, every intruder `intruder_cas`
/// (either may be null for unequipped flight).  `config.max_time_s` is
/// overridden with the scenario's suggested horizon.  Deterministic in
/// (scenario, config, equipage, seed): identical inputs give identical
/// SimResults regardless of thread count, so same-seed runs under
/// different threat policies are paired comparisons over identical
/// traffic.
sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed);

/// Mixed-equipage / per-agent-fault variant.  `run_scenario(s, c, o, i,
/// seed, {})` is bit-identical to the overload above.
sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed, const ScenarioEquipage& equipage);

// --- Degraded-mode regression fixtures (E14) -------------------------
//
// Worst cases surfaced by the GA attack campaign with fault genes
// (core::search_degraded_multi_scenarios targeting kJointTable), frozen
// here as named, seeded fixtures so regressions in the degraded-mode
// path are caught by plain scenario runs — no GA in the loop.

/// A found-hard degraded case: the geometry plus the degraded conditions
/// (coordination loss model + fleet-wide fault profile) it was found under.
struct DegradedScenario {
  Scenario scenario;                    ///< name + (2 + 7K)-gene geometry
  sim::CoordinationConfig coordination; ///< loss model the GA chose
  sim::FaultProfile fault;              ///< fleet-wide profile the GA chose
  std::uint64_t seed = 0;               ///< the seed the outcome is pinned at
};

/// GA-found: two converging intruders whose coordination link bursts
/// (Gilbert–Elliott) through the encounter while a comms blackout covers
/// the joint-table arbitration window around CPA.
DegradedScenario ga_blackout_pincer();

/// GA-found: a climbing tail-chase pair under heavy uniform link loss and
/// ADS-B dropout bursts — the surveillance picture goes stale exactly as
/// the threats merge in the joint table's sensed grid.
DegradedScenario ga_burst_stale_overtake();

/// All degraded fixtures, in presentation order.
const std::vector<std::string>& degraded_scenario_names();
DegradedScenario make_degraded_scenario(std::string_view name);

/// Run a degraded fixture: applies its coordination + fault conditions to
/// `config`, then delegates to run_scenario with the stored seed.
sim::SimResult run_degraded_scenario(const DegradedScenario& degraded, sim::SimConfig config,
                                     const sim::CasFactory& own_cas,
                                     const sim::CasFactory& intruder_cas,
                                     const ScenarioEquipage& equipage = {});

}  // namespace cav::scenarios
