// Named multi-aircraft scenario library.
//
// The paper's validation loop stresses the CAS with Monte-Carlo traffic
// and GA-found worst cases; this library adds the curated axis: named,
// parameterized encounter families that benches, examples, and density
// studies can call up by name.  Every scenario is expressed in the CPA
// parameterization (encounter/multi_encounter.h), so the same geometry
// feeds the simulator, the GA seeds, and reporting.
//
// Families:
//   head-on          K intruders converging nose-on from a fan of
//                    bearings at staggered CPA times (Fig. 5 scaled up)
//   crossing         perpendicular crossers alternating left/right
//   overtake         the GA's challenging tail approach (Figs. 7-8): slow
//                    overtake with a climb through the own-ship's altitude
//   converging-ring  K intruders evenly spread on a ring, all converging
//                    on the own-ship at the same CPA time (the headline
//                    multi-UAV stress case, Wang et al. arXiv:2005.14455)
//   high-density     K intruders sampled from the statistical encounter
//                    model (density-sweep workload, arXiv:1602.04762)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "encounter/multi_encounter.h"
#include "sim/cas.h"
#include "sim/simulation.h"

namespace cav::scenarios {

struct Scenario {
  std::string name;  ///< family name ("head-on", "converging-ring", ...)
  encounter::MultiEncounterParams params;  ///< the full (2 + 7K)-gene geometry

  std::size_t num_aircraft() const { return params.num_intruders() + 1; }
  /// Simulation horizon covering every intruder's CPA plus settle time.
  double suggested_time_s() const { return params.max_t_cpa_s() + 45.0; }
  /// Initial states [own, intruder 1..K].
  std::vector<sim::UavState> initial_states() const {
    return encounter::generate_multi_initial_states(params);
  }
};

Scenario head_on(std::size_t intruders = 1);
Scenario crossing(std::size_t intruders = 1);
Scenario overtake();
Scenario converging_ring(std::size_t intruders = 4, double t_cpa_s = 40.0);
Scenario high_density_random(std::size_t intruders = 8, std::uint64_t seed = 2016);

/// The family names accepted by make_scenario, in presentation order.
const std::vector<std::string>& scenario_names();

/// Build a scenario by family name.  `intruders == 0` means the family
/// default (1, 1, 1, 4, 8 respectively); `seed` only affects high-density.
/// `overtake` is a fixed single-intruder geometry and rejects K > 1.
Scenario make_scenario(std::string_view name, std::size_t intruders = 0,
                       std::uint64_t seed = 2016);

/// Equip and run: aircraft 0 gets `own_cas`, every intruder `intruder_cas`
/// (either may be null for unequipped flight).  `config.max_time_s` is
/// overridden with the scenario's suggested horizon.  Deterministic in
/// (scenario, config, seed): identical inputs give identical SimResults
/// regardless of thread count, so same-seed runs under different threat
/// policies are paired comparisons over identical traffic.
sim::SimResult run_scenario(const Scenario& scenario, sim::SimConfig config,
                            const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                            std::uint64_t seed);

}  // namespace cav::scenarios
