#include "encounter/encounter.h"

#include <algorithm>
#include <cmath>

#include "util/angles.h"
#include "util/expect.h"

namespace cav::encounter {

std::array<double, kNumParams> EncounterParams::to_array() const {
  return {gs_own_mps, vs_own_mps, t_cpa_s,    r_cpa_m, theta_cpa_rad,
          y_cpa_m,    gs_int_mps, theta_int_rad, vs_int_mps};
}

EncounterParams EncounterParams::from_array(const std::array<double, kNumParams>& a) {
  EncounterParams p;
  p.gs_own_mps = a[0];
  p.vs_own_mps = a[1];
  p.t_cpa_s = a[2];
  p.r_cpa_m = a[3];
  p.theta_cpa_rad = a[4];
  p.y_cpa_m = a[5];
  p.gs_int_mps = a[6];
  p.theta_int_rad = a[7];
  p.vs_int_mps = a[8];
  return p;
}

std::array<std::string_view, kNumParams> param_names() {
  return {"gs_own_mps",   "vs_own_mps", "t_cpa_s",    "r_cpa_m",   "theta_cpa_rad",
          "y_cpa_m",      "gs_int_mps", "theta_int_rad", "vs_int_mps"};
}

bool ParamRanges::contains(const std::array<double, kNumParams>& x) const {
  for (std::size_t i = 0; i < kNumParams; ++i) {
    if (x[i] < lo[i] || x[i] > hi[i]) return false;
  }
  return true;
}

std::array<double, kNumParams> ParamRanges::clamp(std::array<double, kNumParams> x) const {
  for (std::size_t i = 0; i < kNumParams; ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
  return x;
}

EncounterParams ParamRanges::sample_uniform(RngStream& rng) const {
  std::array<double, kNumParams> x{};
  for (std::size_t i = 0; i < kNumParams; ++i) x[i] = rng.uniform(lo[i], hi[i]);
  return EncounterParams::from_array(x);
}

InitialStates generate_initial_states(const EncounterParams& params,
                                      const OwnshipReference& ref) {
  expect(params.t_cpa_s > 0.0, "t_cpa_s > 0");
  expect(params.gs_own_mps >= 0.0 && params.gs_int_mps >= 0.0, "ground speeds non-negative");

  InitialStates out;
  out.own.position_m = ref.position_m;
  out.own.ground_speed_mps = params.gs_own_mps;
  out.own.bearing_rad = ref.bearing_rad;
  out.own.vertical_speed_mps = params.vs_own_mps;

  // Equation (1)/(2): velocity components from (Gs, theta, Vs).
  const Vec3 v_own = out.own.velocity_mps();
  const Vec3 v_int{params.gs_int_mps * std::cos(params.theta_int_rad),
                   params.gs_int_mps * std::sin(params.theta_int_rad), params.vs_int_mps};

  // Own-ship position at the CPA, then the intruder's CPA position from the
  // (R, theta, Y) offset, then run the intruder backwards for T seconds
  // (equation (3)).
  const Vec3 own_cpa = ref.position_m + v_own * params.t_cpa_s;
  const Vec3 offset{params.r_cpa_m * std::cos(params.theta_cpa_rad),
                    params.r_cpa_m * std::sin(params.theta_cpa_rad), params.y_cpa_m};
  const Vec3 int_cpa = own_cpa + offset;
  const Vec3 int_initial = int_cpa - v_int * params.t_cpa_s;

  out.intruder.position_m = int_initial;
  out.intruder.ground_speed_mps = params.gs_int_mps;
  out.intruder.bearing_rad = wrap_pi(params.theta_int_rad);
  out.intruder.vertical_speed_mps = params.vs_int_mps;
  return out;
}

EncounterParams head_on() {
  EncounterParams p;
  p.gs_own_mps = 40.0;
  p.vs_own_mps = 0.0;
  p.t_cpa_s = 40.0;
  p.r_cpa_m = 0.0;
  p.theta_cpa_rad = 0.0;
  p.y_cpa_m = 0.0;
  p.gs_int_mps = 40.0;
  p.theta_int_rad = kPi;
  p.vs_int_mps = 0.0;
  return p;
}

EncounterParams tail_approach() {
  EncounterParams p;
  p.gs_own_mps = 25.0;
  p.vs_own_mps = -2.0;   // own-ship descending
  p.t_cpa_s = 45.0;
  p.r_cpa_m = 0.0;
  p.theta_cpa_rad = 0.0;
  p.y_cpa_m = 0.0;
  p.gs_int_mps = 29.0;   // overtaking from behind at only 4 m/s closure
  p.theta_int_rad = 0.0; // same course as the own-ship
  p.vs_int_mps = 2.0;    // climbing through the own-ship's altitude
  return p;
}

EncounterParams crossing() {
  EncounterParams p;
  p.gs_own_mps = 35.0;
  p.vs_own_mps = 0.0;
  p.t_cpa_s = 40.0;
  p.r_cpa_m = 0.0;
  p.theta_cpa_rad = 0.0;
  p.y_cpa_m = 0.0;
  p.gs_int_mps = 35.0;
  p.theta_int_rad = kPi / 2.0;
  p.vs_int_mps = 0.0;
  return p;
}

EncounterParams descending_intruder() {
  EncounterParams p;
  p.gs_own_mps = 30.0;
  p.vs_own_mps = 0.0;
  p.t_cpa_s = 35.0;
  p.r_cpa_m = 0.0;
  p.theta_cpa_rad = 0.0;
  p.y_cpa_m = 0.0;
  p.gs_int_mps = 40.0;
  p.theta_int_rad = 3.0 * kPi / 4.0;
  p.vs_int_mps = -3.0;
  return p;
}

}  // namespace cav::encounter
