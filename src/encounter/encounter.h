// Encounter encoding and generation (§VI.A).
//
// An encounter between two UAVs is described by 9 parameters
//   {Gs_o, Vs_o, T, R, theta, Y, Gs_i, theta_i, Vs_i}
// relative to the Closest Point of Approach (CPA): the own-ship's initial
// position and bearing are fixed ("Due to the fact that the collision
// avoidance logic only considers relative state ... we can fix the
// own-ship's initial position and initial bearing at some convenient
// values"), and the intruder's initial state is reconstructed by running
// its CPA state backwards for T seconds (paper equations (2) and (3)).
//
// All values SI; angles in radians.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "sim/uav.h"
#include "util/rng.h"
#include "util/vec3.h"

namespace cav::encounter {

inline constexpr std::size_t kNumParams = 9;

/// The 9-parameter genome of one encounter.
struct EncounterParams {
  double gs_own_mps = 40.0;   ///< own-ship ground speed
  double vs_own_mps = 0.0;    ///< own-ship vertical speed
  double t_cpa_s = 40.0;      ///< time for both aircraft to reach the CPA
  double r_cpa_m = 0.0;       ///< horizontal distance between aircraft at CPA
  double theta_cpa_rad = 0.0; ///< bearing (world frame) of that offset at CPA
  double y_cpa_m = 0.0;       ///< vertical offset (intruder above own) at CPA
  double gs_int_mps = 40.0;   ///< intruder ground speed (at CPA and throughout)
  double theta_int_rad = 3.141592653589793;  ///< intruder course
  double vs_int_mps = 0.0;    ///< intruder vertical speed

  std::array<double, kNumParams> to_array() const;
  static EncounterParams from_array(const std::array<double, kNumParams>& a);
};

/// Human-readable names, index-aligned with to_array().
std::array<std::string_view, kNumParams> param_names();

/// Per-parameter search bounds.  Defaults restrict generation to conflict
/// geometries ("we only consider encounters where the two UAVs can
/// actually collide (or nearly collide) if no collision avoidance actions
/// were taken"): the CPA miss distance is at most 150 m horizontally and
/// 60 m vertically.
struct ParamRanges {
  std::array<double, kNumParams> lo{15.0, -5.0, 20.0, 0.0, -3.141592653589793, -60.0,
                                    15.0, -3.141592653589793, -5.0};
  std::array<double, kNumParams> hi{60.0, 5.0, 60.0, 150.0, 3.141592653589793, 60.0,
                                    60.0, 3.141592653589793, 5.0};

  bool contains(const std::array<double, kNumParams>& x) const;
  std::array<double, kNumParams> clamp(std::array<double, kNumParams> x) const;

  /// Uniform random point — the paper's random scenario generator.
  EncounterParams sample_uniform(RngStream& rng) const;
};

/// Where the own-ship starts (the fixed "convenient values").
struct OwnshipReference {
  Vec3 position_m{0.0, 0.0, 1000.0};
  double bearing_rad = 0.0;
};

/// Initial kinematic states for both aircraft.
struct InitialStates {
  sim::UavState own;
  sim::UavState intruder;
};

/// Reconstruct initial states from the CPA-relative parameters
/// (equations (1)-(3) of the paper).
InitialStates generate_initial_states(const EncounterParams& params,
                                      const OwnshipReference& ref = {});

/// Named canonical geometries used by benches/tests.
/// Head-on: co-altitude, reciprocal courses, collision at CPA (Fig. 5).
EncounterParams head_on();
/// Tail approach: intruder overtakes slowly from behind while climbing
/// through the descending own-ship — the challenging family the GA found
/// (Figs. 7-8): tiny closure rate, so tau-based alerting stays silent.
EncounterParams tail_approach();
/// Perpendicular crossing at co-altitude.
EncounterParams crossing();
/// Vertical crossing: level own-ship, intruder descending through its
/// altitude on a converging course.
EncounterParams descending_intruder();

}  // namespace cav::encounter
