// Multi-intruder encounter encoding and generation.
//
// The paper's 9-parameter CPA-relative encounter (encounter.h) pits one
// intruder against the own-ship.  A multi-intruder encounter keeps the
// own-ship's two parameters (Gs_o, Vs_o) shared and gives each of K
// intruders its own 7-parameter CPA geometry {T, R, theta, Y, Gs_i,
// theta_i, Vs_i} against the same own-ship trajectory — the traffic shape
// of hierarchical multi-UAV avoidance (Wang et al., arXiv:2005.14455) and
// the density sweeps of Sunberg et al. (arXiv:1602.04762).
//
// Sampling uses deterministic per-intruder RNG streams: intruder k's
// geometry depends only on (seed, encounter index, k), so raising the
// intruder count K extends an encounter without disturbing the intruders
// it already had.
#pragma once

#include <cstdint>
#include <vector>

#include "encounter/encounter.h"
#include "encounter/statistical_model.h"
#include "sim/uav.h"

namespace cav::encounter {

inline constexpr std::size_t kOwnParams = 2;       ///< Gs_o, Vs_o
inline constexpr std::size_t kIntruderParams = 7;  ///< T, R, theta, Y, Gs_i, theta_i, Vs_i

/// CPA-relative geometry of one intruder against the shared own-ship.
struct IntruderGeometry {
  double t_cpa_s = 40.0;      ///< time for this intruder to reach its CPA
  double r_cpa_m = 0.0;       ///< horizontal miss at CPA
  double theta_cpa_rad = 0.0; ///< bearing (world frame) of that offset
  double y_cpa_m = 0.0;       ///< vertical offset at CPA
  double gs_mps = 40.0;       ///< intruder ground speed
  double course_rad = 3.141592653589793;  ///< intruder course
  double vs_mps = 0.0;        ///< intruder vertical speed
};

/// The (2 + 7K)-parameter genome of a K-intruder encounter.
struct MultiEncounterParams {
  double gs_own_mps = 40.0;  ///< own-ship ground speed (shared by all pairings)
  double vs_own_mps = 0.0;   ///< own-ship vertical speed
  std::vector<IntruderGeometry> intruders;  ///< one CPA geometry per intruder

  std::size_t num_intruders() const { return intruders.size(); }

  /// The pairwise encounter own-ship vs intruder k (the paper's 9 params).
  EncounterParams pairwise(std::size_t k) const;
  /// Wrap a pairwise encounter as the K=1 case.
  static MultiEncounterParams from_pairwise(const EncounterParams& p);

  /// Latest per-intruder CPA time — the natural simulation horizon anchor.
  double max_t_cpa_s() const;

  /// Flat genome encoding [Gs_o, Vs_o, (T, R, theta, Y, Gs_i, theta_i,
  /// Vs_i) x K]; from_vector infers K from the vector length.
  std::vector<double> to_vector() const;
  static MultiEncounterParams from_vector(const std::vector<double>& x);
};

/// Initial kinematic states [own, intruder 1..K], each intruder
/// reconstructed by the paper's equations (1)-(3) against the shared
/// own-ship reference.  Pure function of its inputs (no hidden RNG): the
/// same params always place the same aircraft, which is what makes
/// paired policy comparisons over a scenario meaningful.
std::vector<sim::UavState> generate_multi_initial_states(const MultiEncounterParams& params,
                                                         const OwnshipReference& ref = {});

/// Per-gene bounds for a K-intruder genome, index-aligned with
/// MultiEncounterParams::to_vector(), built from the pairwise ranges.
void multi_param_bounds(const ParamRanges& ranges, std::size_t num_intruders,
                        std::vector<double>* lo, std::vector<double>* hi);

/// K intruders sampled from the statistical encounter model with
/// deterministic per-intruder streams.
class MultiEncounterModel {
 public:
  explicit MultiEncounterModel(std::size_t num_intruders,
                               const StatisticalModelConfig& config = {});

  std::size_t num_intruders() const { return num_intruders_; }
  const StatisticalEncounterModel& base() const { return base_; }

  /// Deterministic in (seed, encounter_index): the own-ship draws from one
  /// derived stream, intruder k from its own — identical encounters across
  /// thread counts and across intruder-count extensions.
  MultiEncounterParams sample(std::uint64_t seed, std::uint64_t encounter_index) const;

 private:
  StatisticalEncounterModel base_;
  std::size_t num_intruders_;
};

}  // namespace cav::encounter
