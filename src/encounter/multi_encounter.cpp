#include "encounter/multi_encounter.h"

#include <algorithm>

#include "util/expect.h"
#include "util/rng.h"

namespace cav::encounter {

EncounterParams MultiEncounterParams::pairwise(std::size_t k) const {
  expect(k < intruders.size(), "intruder index in range");
  const IntruderGeometry& g = intruders[k];
  EncounterParams p;
  p.gs_own_mps = gs_own_mps;
  p.vs_own_mps = vs_own_mps;
  p.t_cpa_s = g.t_cpa_s;
  p.r_cpa_m = g.r_cpa_m;
  p.theta_cpa_rad = g.theta_cpa_rad;
  p.y_cpa_m = g.y_cpa_m;
  p.gs_int_mps = g.gs_mps;
  p.theta_int_rad = g.course_rad;
  p.vs_int_mps = g.vs_mps;
  return p;
}

MultiEncounterParams MultiEncounterParams::from_pairwise(const EncounterParams& p) {
  MultiEncounterParams m;
  m.gs_own_mps = p.gs_own_mps;
  m.vs_own_mps = p.vs_own_mps;
  IntruderGeometry g;
  g.t_cpa_s = p.t_cpa_s;
  g.r_cpa_m = p.r_cpa_m;
  g.theta_cpa_rad = p.theta_cpa_rad;
  g.y_cpa_m = p.y_cpa_m;
  g.gs_mps = p.gs_int_mps;
  g.course_rad = p.theta_int_rad;
  g.vs_mps = p.vs_int_mps;
  m.intruders.push_back(g);
  return m;
}

double MultiEncounterParams::max_t_cpa_s() const {
  double max = 0.0;
  for (const IntruderGeometry& g : intruders) max = std::max(max, g.t_cpa_s);
  return max;
}

std::vector<double> MultiEncounterParams::to_vector() const {
  std::vector<double> x;
  x.reserve(kOwnParams + kIntruderParams * intruders.size());
  x.push_back(gs_own_mps);
  x.push_back(vs_own_mps);
  for (const IntruderGeometry& g : intruders) {
    x.push_back(g.t_cpa_s);
    x.push_back(g.r_cpa_m);
    x.push_back(g.theta_cpa_rad);
    x.push_back(g.y_cpa_m);
    x.push_back(g.gs_mps);
    x.push_back(g.course_rad);
    x.push_back(g.vs_mps);
  }
  return x;
}

MultiEncounterParams MultiEncounterParams::from_vector(const std::vector<double>& x) {
  expect(x.size() >= kOwnParams + kIntruderParams &&
             (x.size() - kOwnParams) % kIntruderParams == 0,
         "multi-encounter vector has 2 + 7K entries");
  MultiEncounterParams m;
  m.gs_own_mps = x[0];
  m.vs_own_mps = x[1];
  const std::size_t k = (x.size() - kOwnParams) / kIntruderParams;
  m.intruders.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double* g = x.data() + kOwnParams + i * kIntruderParams;
    m.intruders[i].t_cpa_s = g[0];
    m.intruders[i].r_cpa_m = g[1];
    m.intruders[i].theta_cpa_rad = g[2];
    m.intruders[i].y_cpa_m = g[3];
    m.intruders[i].gs_mps = g[4];
    m.intruders[i].course_rad = g[5];
    m.intruders[i].vs_mps = g[6];
  }
  return m;
}

std::vector<sim::UavState> generate_multi_initial_states(const MultiEncounterParams& params,
                                                         const OwnshipReference& ref) {
  expect(!params.intruders.empty(), "at least one intruder");
  std::vector<sim::UavState> states;
  states.reserve(params.intruders.size() + 1);
  // Every pairwise reconstruction shares the own-ship reference, so the
  // own-ship state is identical across pairs; take it from the first.
  for (std::size_t k = 0; k < params.intruders.size(); ++k) {
    const InitialStates pair = generate_initial_states(params.pairwise(k), ref);
    if (k == 0) states.push_back(pair.own);
    states.push_back(pair.intruder);
  }
  return states;
}

void multi_param_bounds(const ParamRanges& ranges, std::size_t num_intruders,
                        std::vector<double>* lo, std::vector<double>* hi) {
  expect(num_intruders >= 1, "at least one intruder");
  expect(lo != nullptr && hi != nullptr, "bound outputs provided");
  lo->clear();
  hi->clear();
  lo->reserve(kOwnParams + kIntruderParams * num_intruders);
  hi->reserve(kOwnParams + kIntruderParams * num_intruders);
  // Pairwise range indices: 0 Gs_o, 1 Vs_o, then 2..8 the intruder block.
  for (std::size_t i = 0; i < kOwnParams; ++i) {
    lo->push_back(ranges.lo[i]);
    hi->push_back(ranges.hi[i]);
  }
  for (std::size_t k = 0; k < num_intruders; ++k) {
    for (std::size_t i = kOwnParams; i < kNumParams; ++i) {
      lo->push_back(ranges.lo[i]);
      hi->push_back(ranges.hi[i]);
    }
  }
}

MultiEncounterModel::MultiEncounterModel(std::size_t num_intruders,
                                         const StatisticalModelConfig& config)
    : base_(config), num_intruders_(num_intruders) {
  expect(num_intruders >= 1, "at least one intruder");
}

MultiEncounterParams MultiEncounterModel::sample(std::uint64_t seed,
                                                 std::uint64_t encounter_index) const {
  // The own-ship and each intruder draw full pairwise samples from their
  // own derived streams and keep only their half, so no draw count couples
  // one aircraft's geometry to another's.
  RngStream own_rng = RngStream::derive(seed, "mc-own", encounter_index);
  const EncounterParams own_sample = base_.sample(own_rng);

  MultiEncounterParams m;
  m.gs_own_mps = own_sample.gs_own_mps;
  m.vs_own_mps = own_sample.vs_own_mps;
  m.intruders.reserve(num_intruders_);
  for (std::size_t k = 0; k < num_intruders_; ++k) {
    RngStream rng = RngStream::derive(seed, "mc-intruder", encounter_index, k);
    const MultiEncounterParams one = MultiEncounterParams::from_pairwise(base_.sample(rng));
    m.intruders.push_back(one.intruders.front());
  }
  return m;
}

}  // namespace cav::encounter
