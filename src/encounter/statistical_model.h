// A simplified statistical encounter model for Monte-Carlo evaluation.
//
// The paper's references [5, 6] are MIT-LL encounter models fitted to FAA
// radar data; they are not public, and the paper itself doubts their
// representativeness for UAVs ("the radar data are almost entirely of
// manned aircraft encounters ... It is unclear how representative the
// encounter models are of the UAV encounters", §IV).  We substitute a
// documented parametric model over the same 9 encounter parameters:
//
//   * ground speeds   ~ truncated Normal(mu_gs, sigma_gs) within the ranges
//   * vertical rates  ~ mixture: level (prob p_level, small jitter) or a
//                       climb/descend drawn uniformly up to vs_max
//   * time to CPA     ~ Uniform[t_min, t_max]
//   * CPA miss        ~ horizontal |Normal(0, r_sigma)|, bearing uniform,
//                       vertical Normal(0, y_sigma)
//   * courses         ~ uniform
//
// Unlike the GA search space (ParamRanges, which restricts to encounters
// that "can actually collide"), the Monte-Carlo traffic deliberately mixes
// true conflicts with safe passes (wider miss distributions) — otherwise
// the alert rate saturates at 1 for every system and the false-alarm
// dimension of the paper's comparison disappears.
//
// The Monte-Carlo experiment (E7) compares avoidance systems under this
// *fixed common* traffic distribution, which is all that risk-ratio
// comparisons require of the model.
#pragma once

#include "encounter/encounter.h"
#include "util/rng.h"

namespace cav::encounter {

/// ParamRanges widened for Monte-Carlo traffic: CPA misses up to 900 m
/// horizontally / 300 m vertically so the sample contains safe passes.
ParamRanges monte_carlo_ranges();

struct StatisticalModelConfig {
  double gs_mean_mps = 35.0;
  double gs_sigma_mps = 10.0;
  double p_level = 0.6;           ///< probability an aircraft is in level flight
  double level_jitter_mps = 0.25; ///< residual vertical rate when "level"
  double vs_max_mps = 5.0;        ///< max commanded climb/descend rate
  double t_min_s = 20.0;
  double t_max_s = 60.0;
  double r_sigma_m = 300.0;       ///< horizontal CPA miss scale
  double y_sigma_m = 100.0;       ///< vertical CPA miss scale
  ParamRanges ranges = monte_carlo_ranges();  ///< hard bounds (samples are clamped)
};

class StatisticalEncounterModel {
 public:
  explicit StatisticalEncounterModel(const StatisticalModelConfig& config = {})
      : config_(config) {}

  const StatisticalModelConfig& config() const { return config_; }

  EncounterParams sample(RngStream& rng) const;

 private:
  double sample_ground_speed(RngStream& rng) const;
  double sample_vertical_rate(RngStream& rng) const;

  StatisticalModelConfig config_;
};

}  // namespace cav::encounter
