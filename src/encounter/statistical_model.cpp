#include "encounter/statistical_model.h"

#include <algorithm>
#include <cmath>

#include "util/angles.h"

namespace cav::encounter {

ParamRanges monte_carlo_ranges() {
  ParamRanges ranges;
  ranges.hi[3] = 900.0;   // r_cpa_m: allow clearly safe horizontal passes
  ranges.lo[5] = -300.0;  // y_cpa_m: and vertically separated traffic
  ranges.hi[5] = 300.0;
  return ranges;
}

double StatisticalEncounterModel::sample_ground_speed(RngStream& rng) const {
  // Truncated Normal by redraw (the acceptance region is wide, so redraws
  // are rare); falls back to clamping after a bounded number of attempts.
  const double lo = config_.ranges.lo[0];
  const double hi = config_.ranges.hi[0];
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double g = rng.gaussian(config_.gs_mean_mps, config_.gs_sigma_mps);
    if (g >= lo && g <= hi) return g;
  }
  return std::clamp(config_.gs_mean_mps, lo, hi);
}

double StatisticalEncounterModel::sample_vertical_rate(RngStream& rng) const {
  if (rng.chance(config_.p_level)) {
    return rng.gaussian(0.0, config_.level_jitter_mps);
  }
  const double magnitude = rng.uniform(0.5, config_.vs_max_mps);
  return rng.chance(0.5) ? magnitude : -magnitude;
}

EncounterParams StatisticalEncounterModel::sample(RngStream& rng) const {
  EncounterParams p;
  p.gs_own_mps = sample_ground_speed(rng);
  p.vs_own_mps = sample_vertical_rate(rng);
  p.t_cpa_s = rng.uniform(config_.t_min_s, config_.t_max_s);
  p.r_cpa_m = std::abs(rng.gaussian(0.0, config_.r_sigma_m));
  p.theta_cpa_rad = rng.uniform(-kPi, kPi);
  p.y_cpa_m = rng.gaussian(0.0, config_.y_sigma_m);
  p.gs_int_mps = sample_ground_speed(rng);
  p.theta_int_rad = rng.uniform(-kPi, kPi);
  p.vs_int_mps = sample_vertical_rate(rng);
  return EncounterParams::from_array(config_.ranges.clamp(p.to_array()));
}

}  // namespace cav::encounter
