// The versioned flat-file table container behind every serving-layer
// artifact — ROADMAP item 1's "zero-copy table format".
//
// A TableImage is a directory of named, 64-byte-aligned slabs:
//
//   +--------------------------------------------------------------+
//   | header   magic "CAVT" | version | kind fourcc | num_slabs    |
//   |          file_bytes   | FNV-1a64 payload checksum            |
//   | directory (fixed 32 entries x 48 B)                          |
//   |          name[24] | dtype | offset | bytes                   |
//   +--------------------------------------------------------------+
//   | slab 0 payload (64-aligned) ................................ |
//   | slab 1 payload (64-aligned) ................................ |
//   +--------------------------------------------------------------+
//
// Both LogicTable and JointLogicTable dump into this one container
// (serving/table_codec.h names their slabs), replacing the two
// near-duplicate ad-hoc binary formats.  Loading is `mmap(PROT_READ,
// MAP_SHARED)` with zero-copy const views: N processes opening the same
// image share one physical copy of the payload through the page cache,
// which is what makes the 329 MB joint Q deployable fleet-wide.
//
// Endianness: fields and payloads are stored in host byte order like the
// legacy format before it (the fleet is homogeneous little-endian).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serving/table_io.h"

namespace cav::serving {

/// Element type of a slab, so readers can type-check their views.
enum class SlabType : std::uint32_t {
  kBytes = 0,
  kF32 = 1,
  kF64 = 2,
  kU64 = 3,
  kF16 = 4,  ///< IEEE 754 binary16, stored as uint16_t
  kU8 = 5,
  kU32 = 6,  ///< stencil vertex indices (acasx/stencil_image.h)
};

template <typename T>
constexpr SlabType slab_type_of();
template <>
constexpr SlabType slab_type_of<float>() { return SlabType::kF32; }
template <>
constexpr SlabType slab_type_of<double>() { return SlabType::kF64; }
template <>
constexpr SlabType slab_type_of<std::uint64_t>() { return SlabType::kU64; }
template <>
constexpr SlabType slab_type_of<std::uint16_t>() { return SlabType::kF16; }
template <>
constexpr SlabType slab_type_of<std::uint8_t>() { return SlabType::kU8; }
template <>
constexpr SlabType slab_type_of<std::uint32_t>() { return SlabType::kU32; }

/// Streaming writer: slabs are written to disk as they are added (the
/// 329 MB joint Q is never double-buffered), the header + directory are
/// patched in by finish().  Throws TableIoError on every failure.
class TableImageWriter {
 public:
  /// `kind` is a fourcc naming the payload convention ("PAIR", "JNT2");
  /// readers dispatch on it.  The file is created eagerly.
  TableImageWriter(std::string path, std::string_view kind);
  ~TableImageWriter();

  TableImageWriter(const TableImageWriter&) = delete;
  TableImageWriter& operator=(const TableImageWriter&) = delete;

  /// Append one slab (name <= 23 chars, unique).  Data is written through
  /// to the file immediately, 64-aligned.
  void add_slab(std::string_view name, SlabType dtype, const void* data, std::size_t bytes);

  template <typename T>
  void add_slab(std::string_view name, std::span<const T> values) {
    add_slab(name, slab_type_of<T>(), values.data(), values.size_bytes());
  }

  /// Patch in the header/directory and close the file.  Must be called
  /// exactly once; a writer destroyed without finish() removes the
  /// half-written file.
  void finish();

 private:
  struct Entry {
    std::string name;
    SlabType dtype;
    std::uint64_t offset;
    std::uint64_t bytes;
  };

  std::string path_;
  std::uint32_t kind_ = 0;
  std::vector<Entry> entries_;
  std::uint64_t checksum_;
  std::uint64_t cursor_ = 0;
  void* file_ = nullptr;  ///< FILE*, opaque to keep <cstdio> out of the header
  bool finished_ = false;
};

/// A read-only, mmap-backed image.  All accessors return views into the
/// mapping — no payload bytes are ever copied.  The object is movable and
/// shareable via shared_ptr; the mapping lives as long as the object.
class TableImage {
 public:
  struct OpenOptions {
    /// Verify the FNV-1a payload checksum on open (one sequential read
    /// pass; it also warms the page cache).  Disable only for
    /// latency-sensitive cold starts that trust the file.
    bool verify_checksum = true;
  };

  /// mmap `path` and validate the header.  Throws TableIoError with
  /// reason "cannot open" / "truncated" / "bad magic" / "bad version" /
  /// "bad directory" / "checksum mismatch".  (Two overloads instead of a
  /// `= {}` default: gcc 12 rejects brace-defaulting a nested aggregate
  /// with member initializers inside its enclosing class.)
  static TableImage open(const std::string& path, const OpenOptions& options);
  static TableImage open(const std::string& path) { return open(path, OpenOptions{}); }

  TableImage(TableImage&& other) noexcept;
  TableImage& operator=(TableImage&& other) noexcept;
  TableImage(const TableImage&) = delete;
  TableImage& operator=(const TableImage&) = delete;
  ~TableImage();

  const std::string& path() const { return path_; }
  std::uint32_t kind() const { return kind_; }
  /// Kind as a printable fourcc string ("PAIR").
  std::string kind_name() const;
  std::size_t file_bytes() const { return map_bytes_; }
  std::size_t num_slabs() const { return entries_.size(); }

  bool has_slab(std::string_view name) const;
  SlabType slab_dtype(std::string_view name) const;
  /// Raw view of a slab's bytes.  Throws TableIoError (reason "missing
  /// slab") when the image has no slab of that name.
  std::span<const std::byte> slab(std::string_view name) const;

  /// Typed zero-copy view; throws on missing slab, element-type mismatch
  /// or size not divisible by sizeof(T).  kBytes slabs match any T whose
  /// size divides the slab (the escape hatch for opaque metadata).
  template <typename T>
  std::span<const T> slab_as(std::string_view name) const {
    const auto* e = find(name);
    if (e == nullptr) throw TableIoError("TableImage::slab_as", "missing slab", path_);
    if (e->dtype != static_cast<std::uint32_t>(SlabType::kBytes) &&
        e->dtype != static_cast<std::uint32_t>(slab_type_of<T>())) {
      throw TableIoError("TableImage::slab_as", "slab type mismatch", path_);
    }
    if (e->bytes % sizeof(T) != 0) {
      throw TableIoError("TableImage::slab_as", "slab size not a multiple of element", path_);
    }
    return {reinterpret_cast<const T*>(base_ + e->offset), e->bytes / sizeof(T)};
  }

 private:
  struct Entry {
    char name[24];
    std::uint32_t dtype;
    std::uint64_t offset;
    std::uint64_t bytes;
  };

  TableImage() = default;
  const Entry* find(std::string_view name) const;

  std::string path_;
  std::uint32_t kind_ = 0;
  const std::byte* base_ = nullptr;  ///< mmap base (page-aligned)
  std::size_t map_bytes_ = 0;
  std::vector<Entry> entries_;
};

/// First four bytes of a file, or 0 when unreadable — how LogicTable::load
/// dispatches between the legacy formats and TableImage.
std::uint32_t peek_magic(const std::string& path);

/// The container magic ("CAVT" little-endian).
inline constexpr std::uint32_t kTableImageMagic = 0x54564143;

}  // namespace cav::serving
