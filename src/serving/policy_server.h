// The batched policy-serving engine — the tentpole of ROADMAP item 1.
//
// A PolicyServer fronts one pairwise LogicTable and (optionally) one
// JointLogicTable behind a unified query API:
//
//   * query_batch() takes a span of queries and fills a span of per-query
//     advisory-cost vectors.  Queries are (optionally) bucketed by
//     (tau layer, grid cell) before evaluation so neighbouring states hit
//     the same cache lines, and the batch can be sharded across a
//     ThreadPool.  Results are written to out[i] for query i regardless
//     of processing order, so sorting and sharding are invisible.
//   * action_costs() is batch-of-one over the exact same kernel, which is
//     also the kernel behind LogicTable::action_costs — the single-query
//     and batched paths are bit-identical by construction (asserted in
//     tests/test_serving_server.cpp).
//
// Backing storage is whatever the server was built from:
//   * in-memory tables (shared_ptr) — e.g. freshly solved;
//   * an mmap'd f32 image (open()) — zero-copy, page-cache-shared across
//     processes; pairwise_table()/joint_table() expose the mapped tables
//     so existing CAS adapters serve from the same physical pages;
//   * an mmap'd QUANTIZED image — served directly through a dequantizing
//     view (serving/kernel.h) without ever expanding the payload;
//     pairwise_table()/joint_table() are null in this mode because the
//     LogicTable API promises float values.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "acasx/joint_table.h"
#include "acasx/logic_table.h"
#include "serving/table_codec.h"
#include "util/thread_pool.h"

namespace cav::serving {

/// One pairwise query: the continuous state LogicTable::action_costs
/// takes, as data.
struct TrackQuery {
  double tau_s = 0.0;
  double h_ft = 0.0;
  double dh_own_fps = 0.0;
  double dh_int_fps = 0.0;
  acasx::Advisory ra = acasx::Advisory::kCoc;
};

/// One joint-threat query: the continuous state
/// JointLogicTable::action_costs takes, as data.
struct JointTrackQuery {
  double tau1_s = 0.0;
  double delta_s = 0.0;
  double h1_ft = 0.0;
  double dh_own_fps = 0.0;
  double dh_int1_fps = 0.0;
  double h2_ft = 0.0;
  acasx::SecondarySense sense = acasx::SecondarySense::kLevel;
  acasx::Advisory ra = acasx::Advisory::kCoc;
};

/// Per-query result: the five advisory costs.
struct AdvisoryCosts {
  std::array<double, acasx::kNumAdvisories> costs{};
};

/// Whether to bucket queries by (tau layer, grid cell) before evaluation.
enum class CellSort : std::uint8_t {
  /// Decide from the pool size: the sequential sort only pays for itself
  /// when the sorted layout feeds two or more workers perfectly-local
  /// shards (ROADMAP item 1's measured break-even); single-threaded
  /// evaluation is faster in input order.
  kAuto,
  kOn,
  kOff,
};

struct BatchOptions {
  /// Bucket queries by (tau layer, grid cell) before evaluation.  kOff
  /// evaluates the batch in input order (useful for measuring the
  /// locality win, bench_policy_server --no-sort); kAuto applies the
  /// pool-size heuristic of `should_sort()`.
  CellSort sort_by_cell = CellSort::kAuto;
  /// Shard the batch across a pool.  Results are identical with or
  /// without a pool (each query writes only its own output slot).
  ThreadPool* pool = nullptr;

  /// The resolved sort decision — the heuristic tests pin.
  bool should_sort() const {
    if (sort_by_cell != CellSort::kAuto) return sort_by_cell == CellSort::kOn;
    return pool != nullptr && pool->thread_count() >= 2;
  }
};

class PolicyServer {
 public:
  /// Serve in-memory (or mapped) tables.  `joint` may be null: joint
  /// queries then throw (has_joint() tells).
  explicit PolicyServer(std::shared_ptr<const acasx::LogicTable> pairwise,
                        std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

  /// Serve TableImage files.  f32 images are opened zero-copy through
  /// LogicTable::open_mapped / JointLogicTable::open_mapped (the mapped
  /// tables are exposed); quantized images are served directly through a
  /// dequantizing view.  `joint_path` empty means pairwise-only.
  static PolicyServer open(const std::string& pairwise_path,
                           const std::string& joint_path = std::string());

  /// Evaluate `queries[i]` into `out[i]` for all i.  Spans must be the
  /// same length.  Bit-identical to calling action_costs per query, in
  /// any processing order.
  void query_batch(std::span<const TrackQuery> queries, std::span<AdvisoryCosts> out,
                   const BatchOptions& options = {}) const;
  void query_batch(std::span<const JointTrackQuery> queries, std::span<AdvisoryCosts> out,
                   const BatchOptions& options = {}) const;

  /// Batch-of-one conveniences over the same kernel.
  void action_costs(const TrackQuery& query,
                    std::span<double, acasx::kNumAdvisories> out) const;
  void action_costs(const JointTrackQuery& query,
                    std::span<double, acasx::kNumAdvisories> out) const;

  bool has_joint() const { return joint_loaded_; }

  /// Stored precision of each payload.
  Quantization pairwise_quantization() const { return pair_slabs_.quant; }
  Quantization joint_quantization() const { return joint_slabs_.quant; }

  /// Bytes actually served per table (values + int8 scales); the
  /// quantization win bench_policy_server reports.
  std::size_t pairwise_payload_bytes() const { return pair_slabs_.payload_bytes(); }
  std::size_t joint_payload_bytes() const { return joint_slabs_.payload_bytes(); }

  const acasx::AcasXuConfig& pairwise_config() const { return pair_config_; }
  const acasx::JointConfig& joint_config() const { return joint_config_; }

  /// The backing tables, for wiring CAS adapters onto the server's shared
  /// storage (sim/served_cas.h).  Null when serving a quantized image
  /// (no float table exists in that mode).
  const std::shared_ptr<const acasx::LogicTable>& pairwise_table() const { return pair_table_; }
  const std::shared_ptr<const acasx::JointLogicTable>& joint_table() const {
    return joint_table_;
  }

 private:
  PolicyServer() = default;

  void init_pair(std::shared_ptr<const acasx::LogicTable> table);
  void init_joint(std::shared_ptr<const acasx::JointLogicTable> table);

  std::shared_ptr<const acasx::LogicTable> pair_table_;
  std::shared_ptr<const TableImage> pair_image_;
  ValueSlabs pair_slabs_{};
  acasx::AcasXuConfig pair_config_{};
  GridN<3> pair_grid_;

  bool joint_loaded_ = false;
  std::shared_ptr<const acasx::JointLogicTable> joint_table_;
  std::shared_ptr<const TableImage> joint_image_;
  ValueSlabs joint_slabs_{};
  acasx::JointConfig joint_config_{};
  GridN<4> joint_grid_;
};

}  // namespace cav::serving
