// Quantized value layers for the serving images — ROADMAP item 1's "table
// compression for the edge".
//
// Three storage modes for a table's float32 Q payload, selected at dump
// time and transparent to the query kernel (serving/kernel.h views
// dequantize at gather time, so quantized images are served zero-copy
// too, never expanded in memory):
//
//   kNone     float32 as solved; queries are bit-identical to the
//             in-memory table.
//   kFloat16  IEEE binary16, round-to-nearest-even.  2x smaller; the
//             Q values (|q| <= ~1e4 after the offline solve) sit well
//             inside half range, so the error is pure rounding (~2^-11
//             relative).
//   kInt8     affine uint8 per block of `block_elems` consecutive values:
//             q ~= offset + scale * u8.  With the default block of one
//             grid point's 25 (ra, action) values, payload+scales come to
//             1.32 B/value = 33% of float32 — and the block never spans
//             states, so the resolution adapts to each state's own cost
//             spread (what the argmin actually compares).
//
// The policy-disagreement rate each lossy mode induces is measured (not
// assumed) by bench_policy_server and pinned in tests.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cav::serving {

enum class Quantization : std::uint64_t { kNone = 0, kFloat16 = 1, kInt8 = 2 };

/// Short stable name for metrics / printouts ("f32", "f16", "int8").
const char* quantization_name(Quantization q);

// --- IEEE 754 binary16 codec (software; storage type uint16_t) ---

/// float -> half, round-to-nearest-even, overflow to +-inf.
std::uint16_t f16_encode(float value);

/// half -> float, exact.
inline float f16_decode(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000U) << 16;
  std::uint32_t exp = (h >> 10) & 0x1FU;
  std::uint32_t mant = h & 0x3FFU;
  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);
    // Subnormal half: normalize into float.
    while ((mant & 0x400U) == 0) {
      mant <<= 1;
      --exp;
    }
    mant &= 0x3FFU;
    return std::bit_cast<float>(sign | ((exp + 113U) << 23) | (mant << 13));
  }
  if (exp == 31) return std::bit_cast<float>(sign | 0x7F800000U | (mant << 13));  // inf/nan
  return std::bit_cast<float>(sign | ((exp + 112U) << 23) | (mant << 13));
}

// --- Block-affine int8 ---

/// Per-block (scale, offset) pairs are stored interleaved in one float
/// slab: block b dequantizes as offset[b] + scale[b] * u8.
struct Int8Blocks {
  std::vector<std::uint8_t> values;
  std::vector<float> scale_offset;  ///< [scale0, offset0, scale1, offset1, ...]
  std::size_t block_elems = 0;
};

/// Quantize `values` in blocks of `block_elems` consecutive elements (the
/// last block may be short).  scale is (max-min)/255 over the block (0 for
/// a constant block), offset is min.
Int8Blocks int8_quantize(std::span<const float> values, std::size_t block_elems);

/// Encode every value to binary16.
std::vector<std::uint16_t> f16_quantize(std::span<const float> values);

/// Expand a quantized payload back to float32 (the lossy load path for
/// LogicTable::load on a quantized image).
std::vector<float> f16_dequantize(std::span<const std::uint16_t> values);
std::vector<float> int8_dequantize(std::span<const std::uint8_t> values,
                                   std::span<const float> scale_offset,
                                   std::size_t block_elems);

}  // namespace cav::serving
