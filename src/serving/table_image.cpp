#include "serving/table_image.h"

#include <sys/mman.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

namespace cav::serving {
namespace {

constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kMaxSlabs = 32;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kEntryBytes = 24 + 4 + 4 + 8 + 8;  // name, dtype, pad, offset, bytes
constexpr std::size_t kHeaderBytes = 32;                 // magic..checksum
// Directory capacity is fixed so payload can stream out before the slab
// count is known; first slab starts at the next 64-byte boundary.
constexpr std::size_t kPayloadStart =
    ((kHeaderBytes + kMaxSlabs * kEntryBytes) + kAlign - 1) / kAlign * kAlign;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t fourcc(std::string_view s) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4 && i < s.size(); ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s[i])) << (8 * i);
  }
  return v;
}

}  // namespace

TableImageWriter::TableImageWriter(std::string path, std::string_view kind)
    : path_(std::move(path)), kind_(fourcc(kind)), checksum_(kFnvOffset) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) throw TableIoError("TableImageWriter", "cannot open", path_);
  file_ = f;
  cursor_ = kPayloadStart;
  if (std::fseek(f, static_cast<long>(kPayloadStart), SEEK_SET) != 0) {
    std::fclose(f);
    file_ = nullptr;
    throw TableIoError("TableImageWriter", "seek failed", path_);
  }
}

TableImageWriter::~TableImageWriter() {
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    if (!finished_) std::remove(path_.c_str());
  }
}

void TableImageWriter::add_slab(std::string_view name, SlabType dtype, const void* data,
                                std::size_t bytes) {
  if (file_ == nullptr || finished_) {
    throw TableIoError("TableImageWriter::add_slab", "writer already finished", path_);
  }
  if (name.empty() || name.size() > 23) {
    throw TableIoError("TableImageWriter::add_slab", "bad slab name", path_);
  }
  if (entries_.size() >= kMaxSlabs) {
    throw TableIoError("TableImageWriter::add_slab", "too many slabs", path_);
  }
  for (const Entry& e : entries_) {
    if (e.name == name) throw TableIoError("TableImageWriter::add_slab", "duplicate slab", path_);
  }
  auto* f = static_cast<std::FILE*>(file_);

  const std::size_t padded = (cursor_ + kAlign - 1) / kAlign * kAlign;
  if (padded != cursor_) {
    static constexpr char zeros[kAlign] = {};
    if (std::fwrite(zeros, 1, padded - cursor_, f) != padded - cursor_) {
      throw TableIoError("TableImageWriter::add_slab", "write failed", path_);
    }
    cursor_ = padded;
  }
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw TableIoError("TableImageWriter::add_slab", "write failed", path_);
  }
  checksum_ = fnv1a(checksum_, data, bytes);
  entries_.push_back({std::string(name), dtype, cursor_, bytes});
  cursor_ += bytes;
}

void TableImageWriter::finish() {
  if (file_ == nullptr || finished_) {
    throw TableIoError("TableImageWriter::finish", "writer already finished", path_);
  }
  auto* f = static_cast<std::FILE*>(file_);

  unsigned char header[kPayloadStart] = {};
  const std::uint32_t magic = kTableImageMagic;
  const std::uint32_t version = kVersion;
  const auto num_slabs = static_cast<std::uint32_t>(entries_.size());
  const std::uint64_t file_bytes = cursor_;
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 4);
  std::memcpy(header + 8, &kind_, 4);
  std::memcpy(header + 12, &num_slabs, 4);
  std::memcpy(header + 16, &file_bytes, 8);
  std::memcpy(header + 24, &checksum_, 8);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    unsigned char* e = header + kHeaderBytes + i * kEntryBytes;
    std::memcpy(e, entries_[i].name.c_str(), entries_[i].name.size());
    const auto dtype = static_cast<std::uint32_t>(entries_[i].dtype);
    std::memcpy(e + 24, &dtype, 4);
    std::memcpy(e + 32, &entries_[i].offset, 8);
    std::memcpy(e + 40, &entries_[i].bytes, 8);
  }
  const bool ok = std::fseek(f, 0, SEEK_SET) == 0 &&
                  std::fwrite(header, 1, sizeof header, f) == sizeof header &&
                  std::fflush(f) == 0;
  std::fclose(f);
  file_ = nullptr;
  if (!ok) throw TableIoError("TableImageWriter::finish", "write failed", path_);
  finished_ = true;
}

TableImage TableImage::open(const std::string& path, const OpenOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TableIoError("TableImage::open", "cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw TableIoError("TableImage::open", "cannot stat", path);
  }
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < kPayloadStart) {
    ::close(fd);
    throw TableIoError("TableImage::open", "truncated", path);
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) throw TableIoError("TableImage::open", "mmap failed", path);

  // From here on `image` owns the mapping: any throw unwinds through its
  // destructor, which unmaps.
  TableImage image;
  image.path_ = path;
  image.base_ = static_cast<const std::byte*>(base);
  image.map_bytes_ = file_bytes;

  const auto* h = reinterpret_cast<const unsigned char*>(base);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t num_slabs = 0;
  std::uint64_t declared_bytes = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&magic, h + 0, 4);
  std::memcpy(&version, h + 4, 4);
  std::memcpy(&image.kind_, h + 8, 4);
  std::memcpy(&num_slabs, h + 12, 4);
  std::memcpy(&declared_bytes, h + 16, 8);
  std::memcpy(&checksum, h + 24, 8);
  if (magic != kTableImageMagic) throw TableIoError("TableImage::open", "bad magic", path);
  if (version != kVersion) throw TableIoError("TableImage::open", "bad version", path);
  if (num_slabs > kMaxSlabs) throw TableIoError("TableImage::open", "bad directory", path);
  if (declared_bytes > file_bytes) throw TableIoError("TableImage::open", "truncated", path);

  image.entries_.resize(num_slabs);
  std::uint64_t running = kFnvOffset;
  for (std::size_t i = 0; i < num_slabs; ++i) {
    Entry& e = image.entries_[i];
    const unsigned char* src = h + kHeaderBytes + i * kEntryBytes;
    std::memcpy(e.name, src, 24);
    e.name[23] = '\0';
    std::memcpy(&e.dtype, src + 24, 4);
    std::memcpy(&e.offset, src + 32, 8);
    std::memcpy(&e.bytes, src + 40, 8);
    if (e.offset % kAlign != 0 || e.offset < kPayloadStart ||
        e.offset + e.bytes > declared_bytes) {
      throw TableIoError("TableImage::open", "bad directory", path);
    }
    if (options.verify_checksum) {
      running = fnv1a(running, image.base_ + e.offset, e.bytes);
    }
  }
  if (options.verify_checksum && running != checksum) {
    throw TableIoError("TableImage::open", "checksum mismatch", path);
  }
  return image;
}

TableImage::TableImage(TableImage&& other) noexcept
    : path_(std::move(other.path_)),
      kind_(other.kind_),
      base_(other.base_),
      map_bytes_(other.map_bytes_),
      entries_(std::move(other.entries_)) {
  other.base_ = nullptr;
  other.map_bytes_ = 0;
}

TableImage& TableImage::operator=(TableImage&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(const_cast<std::byte*>(base_), map_bytes_);
    path_ = std::move(other.path_);
    kind_ = other.kind_;
    base_ = other.base_;
    map_bytes_ = other.map_bytes_;
    entries_ = std::move(other.entries_);
    other.base_ = nullptr;
    other.map_bytes_ = 0;
  }
  return *this;
}

TableImage::~TableImage() {
  if (base_ != nullptr) ::munmap(const_cast<std::byte*>(base_), map_bytes_);
}

std::string TableImage::kind_name() const {
  std::string s(4, '\0');
  for (std::size_t i = 0; i < 4; ++i) {
    s[i] = static_cast<char>((kind_ >> (8 * i)) & 0xFF);
  }
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

const TableImage::Entry* TableImage::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

bool TableImage::has_slab(std::string_view name) const { return find(name) != nullptr; }

SlabType TableImage::slab_dtype(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) throw TableIoError("TableImage::slab_dtype", "missing slab", path_);
  return static_cast<SlabType>(e->dtype);
}

std::span<const std::byte> TableImage::slab(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) throw TableIoError("TableImage::slab", "missing slab", path_);
  return {base_ + e->offset, e->bytes};
}

std::uint32_t peek_magic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::uint32_t magic = 0;
  const bool ok = std::fread(&magic, sizeof magic, 1, f) == 1;
  std::fclose(f);
  return ok ? magic : 0;
}

}  // namespace cav::serving
