// Unified error type for table I/O across the serving layer and both
// logic tables.
//
// Before the serving layer, LogicTable and JointLogicTable each threw six
// hand-rolled std::runtime_error strings ("cannot open", "bad magic",
// "size mismatch", ...).  TableIoError is the single replacement: it
// derives from std::runtime_error (existing EXPECT_THROW sites keep
// passing) and carries the offending path and a short machine-greppable
// reason so tests can assert on the failure mode, not on prose.
#pragma once

#include <stdexcept>
#include <string>

namespace cav::serving {

class TableIoError : public std::runtime_error {
 public:
  /// `op` names the failing API ("LogicTable::load", "TableImage::open"),
  /// `reason` the failure mode ("cannot open", "bad magic", "truncated",
  /// "size mismatch", "checksum mismatch", "bad alignment", ...).
  TableIoError(std::string op, std::string reason, std::string path)
      : std::runtime_error(op + ": " + reason + " in " + path),
        op_(std::move(op)),
        reason_(std::move(reason)),
        path_(std::move(path)) {}

  const std::string& op() const { return op_; }
  const std::string& reason() const { return reason_; }
  const std::string& path() const { return path_; }

 private:
  std::string op_;
  std::string reason_;
  std::string path_;
};

}  // namespace cav::serving
