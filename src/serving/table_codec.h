// Slab-name conventions and value-payload codec shared by every table
// that dumps into a TableImage (acasx/logic_table.cpp, joint_table.cpp)
// and by the PolicyServer that serves the images back.
//
// An image carries:
//   meta_f64   table-kind-specific config doubles (axis bounds, dynamics,
//              cost model) — encoded/decoded by the table class itself
//   meta_u64   table-kind-specific config counts (axis sizes, tau_max)
//   quant      [mode, block_elems, value_count] (u64)
//   q          the value payload: f32, f16 or u8 per `quant`
//   q_scale    interleaved (scale, offset) f32 per block (int8 only)
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "serving/quantize.h"
#include "serving/table_image.h"

namespace cav::serving {

inline constexpr std::string_view kKindPairwise = "PAIR";
inline constexpr std::string_view kKindJoint = "JNT2";

inline constexpr std::string_view kSlabMetaF64 = "meta_f64";
inline constexpr std::string_view kSlabMetaU64 = "meta_u64";
inline constexpr std::string_view kSlabQuant = "quant";
inline constexpr std::string_view kSlabValues = "q";
inline constexpr std::string_view kSlabScales = "q_scale";

/// Default int8 block: one grid point's (ra, action) square — 25 values
/// for the 5-advisory vertical tables — so quantization resolution adapts
/// per state (see serving/quantize.h).
inline constexpr std::size_t kDefaultInt8BlockElems = 25;

/// Write the quant/q/q_scale slabs for `values` under the given mode.
void write_value_slabs(TableImageWriter& writer, std::span<const float> values,
                       Quantization quant, std::size_t block_elems = kDefaultInt8BlockElems);

/// Zero-copy views of an image's value slabs (pointers into the mapping).
struct ValueSlabs {
  Quantization quant = Quantization::kNone;
  std::size_t count = 0;        ///< number of logical values
  std::size_t block_elems = 0;  ///< int8 block size (0 otherwise)
  const float* f32 = nullptr;
  const std::uint16_t* f16 = nullptr;
  const std::uint8_t* u8 = nullptr;
  const float* scale_offset = nullptr;

  /// Bytes actually served per full table (payload + scales).
  std::size_t payload_bytes() const;
};

/// Open and validate the value slabs; throws TableIoError on a malformed
/// or inconsistent image.
ValueSlabs open_value_slabs(const TableImage& image);

/// Expand to float32 (lossy for f16/int8) — the owning load path.
std::vector<float> dequantize_values(const ValueSlabs& values);

}  // namespace cav::serving
