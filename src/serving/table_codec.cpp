#include "serving/table_codec.h"

#include <cstring>

namespace cav::serving {

void write_value_slabs(TableImageWriter& writer, std::span<const float> values,
                       Quantization quant, std::size_t block_elems) {
  const std::uint64_t header[3] = {static_cast<std::uint64_t>(quant),
                                   quant == Quantization::kInt8 ? block_elems : 0,
                                   values.size()};
  writer.add_slab(kSlabQuant, SlabType::kU64, header, sizeof header);
  switch (quant) {
    case Quantization::kNone:
      writer.add_slab(kSlabValues, SlabType::kF32, values.data(), values.size_bytes());
      break;
    case Quantization::kFloat16: {
      const std::vector<std::uint16_t> half = f16_quantize(values);
      writer.add_slab(kSlabValues, SlabType::kF16, half.data(), half.size() * sizeof(half[0]));
      break;
    }
    case Quantization::kInt8: {
      const Int8Blocks blocks = int8_quantize(values, block_elems);
      writer.add_slab(kSlabValues, SlabType::kU8, blocks.values.data(), blocks.values.size());
      writer.add_slab(kSlabScales, SlabType::kF32, blocks.scale_offset.data(),
                      blocks.scale_offset.size() * sizeof(float));
      break;
    }
  }
}

std::size_t ValueSlabs::payload_bytes() const {
  switch (quant) {
    case Quantization::kNone: return count * sizeof(float);
    case Quantization::kFloat16: return count * sizeof(std::uint16_t);
    case Quantization::kInt8: {
      const std::size_t blocks = block_elems == 0 ? 0 : (count + block_elems - 1) / block_elems;
      return count + blocks * 2 * sizeof(float);
    }
  }
  return 0;
}

ValueSlabs open_value_slabs(const TableImage& image) {
  const auto quant_slab = image.slab_as<std::uint64_t>(kSlabQuant);
  if (quant_slab.size() != 3) {
    throw TableIoError("open_value_slabs", "bad quant slab", image.path());
  }
  ValueSlabs out;
  out.quant = static_cast<Quantization>(quant_slab[0]);
  out.block_elems = static_cast<std::size_t>(quant_slab[1]);
  out.count = static_cast<std::size_t>(quant_slab[2]);
  switch (out.quant) {
    case Quantization::kNone: {
      const auto v = image.slab_as<float>(kSlabValues);
      if (v.size() != out.count) {
        throw TableIoError("open_value_slabs", "size mismatch", image.path());
      }
      out.f32 = v.data();
      break;
    }
    case Quantization::kFloat16: {
      const auto v = image.slab_as<std::uint16_t>(kSlabValues);
      if (v.size() != out.count) {
        throw TableIoError("open_value_slabs", "size mismatch", image.path());
      }
      out.f16 = v.data();
      break;
    }
    case Quantization::kInt8: {
      const auto v = image.slab_as<std::uint8_t>(kSlabValues);
      const auto so = image.slab_as<float>(kSlabScales);
      const std::size_t blocks =
          out.block_elems == 0 ? 0 : (out.count + out.block_elems - 1) / out.block_elems;
      if (v.size() != out.count || out.block_elems == 0 || so.size() != 2 * blocks) {
        throw TableIoError("open_value_slabs", "size mismatch", image.path());
      }
      out.u8 = v.data();
      out.scale_offset = so.data();
      break;
    }
    default:
      throw TableIoError("open_value_slabs", "bad quantization mode", image.path());
  }
  return out;
}

std::vector<float> dequantize_values(const ValueSlabs& values) {
  switch (values.quant) {
    case Quantization::kNone: {
      std::vector<float> out(values.count);
      std::memcpy(out.data(), values.f32, values.count * sizeof(float));
      return out;
    }
    case Quantization::kFloat16:
      return f16_dequantize({values.f16, values.count});
    case Quantization::kInt8:
      return int8_dequantize({values.u8, values.count},
                             {values.scale_offset,
                              2 * ((values.count + values.block_elems - 1) / values.block_elems)},
                             values.block_elems);
  }
  return {};
}

}  // namespace cav::serving
