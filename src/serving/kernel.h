// The one multilinear-interpolation kernel behind every table query.
//
// LogicTable::action_costs, JointLogicTable::action_costs and
// PolicyServer::query_batch are all thin entry points over grid_query():
// batch-of-one is bit-identical to the single-query path by construction,
// not by test luck.  The kernel is allocation-free (vertices scatter into
// a stack array) and accumulates per-action sums in double in the exact
// vertex order of the seed implementation, so replacing the old per-table
// loops preserved every simulation pin bit for bit.
//
// Value access is a template View so quantized images are served without
// expansion: F32View reads the solved floats (bit-identical), F16View and
// Int8View dequantize at gather time (serving/quantize.h).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

#include "serving/quantize.h"
#include "util/grid.h"

namespace cav::serving {

struct F32View {
  const float* q;
  float operator()(std::size_t i) const { return q[i]; }
};

struct F16View {
  const std::uint16_t* q;
  float operator()(std::size_t i) const { return f16_decode(q[i]); }
};

struct Int8View {
  const std::uint8_t* q;
  const float* scale_offset;  ///< interleaved (scale, offset) per block
  std::size_t block_elems;
  float operator()(std::size_t i) const {
    const float* so = scale_offset + 2 * (i / block_elems);
    return so[1] + so[0] * static_cast<float>(q[i]);
  }
};

/// The tau-layer bracketing every vertical table shares: clamp to
/// [0, tau_max], interpolate linearly between integer layers (the seed
/// LogicTable convention, preserved expression for expression).
struct TauBracket {
  std::size_t lo;
  std::size_t hi;
  double frac;
};

inline TauBracket bracket_tau(double tau, std::size_t tau_max) {
  const double t = std::clamp(tau, 0.0, static_cast<double>(tau_max));
  const auto lo = static_cast<std::size_t>(t);
  const std::size_t hi = std::min<std::size_t>(lo + 1, tau_max);
  return {lo, hi, t - static_cast<double>(lo)};
}

/// Accumulate the A per-action costs of one query.  Entry (layer, vertex,
/// ra, action) lives at ((layer_offset + layer) * grid_size + vertex) *
/// A^2 + ra * A + action — `layer_offset` is 0 for the pairwise table and
/// slab * num_tau_layers for the joint table.
///
/// Accumulation order: per accumulator, vertices in scatter order — the
/// same addition sequence as the seed per-action loops, hence
/// bit-identical; actions are the contiguous inner loop (stride 1) so the
/// compiler vectorizes the multiply-accumulate.
template <std::size_t A, class View>
inline void interpolate_costs(const View& q, std::size_t grid_size, std::size_t layer_offset,
                              const TauBracket& t, const GridVertexWeight* verts,
                              std::size_t nverts, std::size_t ra, double* out) {
  double lo[A] = {};
  const std::size_t ra_off = ra * A;
  const std::size_t base_lo = (layer_offset + t.lo) * grid_size;
  for (std::size_t v = 0; v < nverts; ++v) {
    const double w = verts[v].weight;
    const std::size_t cell = (base_lo + verts[v].flat) * (A * A) + ra_off;
    for (std::size_t a = 0; a < A; ++a) lo[a] += w * static_cast<double>(q(cell + a));
  }
  if (t.hi == t.lo) {
    for (std::size_t a = 0; a < A; ++a) out[a] = lo[a];
    return;
  }
  double hi[A] = {};
  const std::size_t base_hi = (layer_offset + t.hi) * grid_size;
  for (std::size_t v = 0; v < nverts; ++v) {
    const double w = verts[v].weight;
    const std::size_t cell = (base_hi + verts[v].flat) * (A * A) + ra_off;
    for (std::size_t a = 0; a < A; ++a) hi[a] += w * static_cast<double>(q(cell + a));
  }
  for (std::size_t a = 0; a < A; ++a) out[a] = lo[a] * (1.0 - t.frac) + hi[a] * t.frac;
}

/// Scatter a continuous point and interpolate: the complete per-query
/// work after the caller has mapped its semantics (tau estimation, slab
/// selection) onto (grid point, layer offset, tau bracket, ra).
template <std::size_t A, std::size_t N, class View>
inline void grid_query(const View& q, const GridN<N>& grid, const std::array<double, N>& x,
                       std::size_t layer_offset, const TauBracket& t, std::size_t ra,
                       double* out) {
  GridVertexWeight verts[std::size_t{1} << N];
  const std::size_t nverts = grid.scatter_into(x, verts);
  interpolate_costs<A>(q, grid.size(), layer_offset, t, verts, nverts, ra, out);
}

}  // namespace cav::serving
