#include "serving/policy_server.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "serving/kernel.h"
#include "util/expect.h"

namespace cav::serving {
namespace {

constexpr std::size_t kA = acasx::kNumAdvisories;

/// Run `fn` with the value view matching the stored precision — the one
/// dispatch point between f32/f16/int8 serving.
template <class Fn>
void with_view(const ValueSlabs& slabs, Fn&& fn) {
  switch (slabs.quant) {
    case Quantization::kNone:
      fn(F32View{slabs.f32});
      return;
    case Quantization::kFloat16:
      fn(F16View{slabs.f16});
      return;
    case Quantization::kInt8:
      fn(Int8View{slabs.u8, slabs.scale_offset, slabs.block_elems});
      return;
  }
  expect(false, "known quantization mode");
}

template <class View>
void eval_pair_range(const View& view, const GridN<3>& grid, std::size_t tau_max,
                     std::span<const TrackQuery> queries, AdvisoryCosts* out,
                     std::size_t begin, std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    const TrackQuery& q = queries[k];
    const TauBracket t = bracket_tau(q.tau_s, tau_max);
    grid_query<kA>(view, grid, {q.h_ft, q.dh_own_fps, q.dh_int_fps}, 0, t,
                   static_cast<std::size_t>(q.ra), out[k].costs.data());
  }
}

template <class View>
void eval_joint_range(const View& view, const GridN<4>& grid, const acasx::JointConfig& config,
                      std::span<const JointTrackQuery> queries, AdvisoryCosts* out,
                      std::size_t begin, std::size_t end) {
  const std::size_t layers = config.space.tau_max + 1;
  for (std::size_t k = begin; k < end; ++k) {
    const JointTrackQuery& q = queries[k];
    const std::size_t db = config.secondary.delta_bin(q.delta_s);
    const std::size_t slab = config.slab_index(db, q.sense);
    const TauBracket t = bracket_tau(
        (q.tau1_s + config.secondary.delta_value_s(db)) / config.dynamics.dt_s,
        config.space.tau_max);
    grid_query<kA>(view, grid, {q.h1_ft, q.dh_own_fps, q.dh_int1_fps, q.h2_ft},
                   slab * layers, t, static_cast<std::size_t>(q.ra), out[k].costs.data());
  }
}

/// Sort query indices by locality key so neighbouring evaluations touch
/// neighbouring table bytes.  Stable: equal keys keep input order.
///
/// The hot path packs (key, index) into one u64 and sorts the packed
/// vector — a contiguous u64 sort costs a fraction of an index sort that
/// chases the key array through the comparator, and the index in the low
/// bits makes the result stable without std::stable_sort.  Keys are flat
/// table-cell indices, far below 2^40 for any table that fits in memory;
/// the comparator fallback covers batches of 2^24+ queries.
std::vector<std::uint32_t> sorted_order(const std::vector<std::uint64_t>& keys) {
  const std::size_t n = keys.size();
  std::vector<std::uint32_t> order(n);
  constexpr std::uint64_t kIndexBits = 24;
  if (n < (std::uint64_t{1} << kIndexBits) &&
      *std::max_element(keys.begin(), keys.end()) < (std::uint64_t{1} << (64 - kIndexBits))) {
    std::vector<std::uint64_t> packed(n);
    for (std::size_t i = 0; i < n; ++i) packed[i] = (keys[i] << kIndexBits) | i;
    std::sort(packed.begin(), packed.end());
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(packed[i] & ((std::uint64_t{1} << kIndexBits) - 1));
    }
    return order;
  }
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&keys](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });
  return order;
}

/// Run one batch: optionally reorder by locality key, evaluate, scatter
/// results back to input order.  The sorted path physically gathers the
/// queries and evaluates the copy — measured ~2x faster than evaluating
/// through an index indirection, because the reorder passes stream while
/// indirect evaluation turns the query reads and result writes into
/// random access alongside the table gathers.
template <class Query, class Eval>
void run_batch(std::span<const Query> queries, std::span<AdvisoryCosts> out,
               const BatchOptions& options, const std::vector<std::uint64_t>& keys,
               Eval&& eval) {
  const std::size_t n = queries.size();
  const auto eval_all = [&](std::span<const Query> q, AdvisoryCosts* o) {
    if (options.pool != nullptr && n > 1) {
      options.pool->parallel_for_ranges(
          n, [&](std::size_t begin, std::size_t end) { eval(q, o, begin, end); });
    } else {
      eval(q, o, 0, n);
    }
  };
  if (keys.empty()) {
    eval_all(queries, out.data());
    return;
  }
  const std::vector<std::uint32_t> order = sorted_order(keys);
  std::vector<Query> gathered(n);
  for (std::size_t k = 0; k < n; ++k) gathered[k] = queries[order[k]];
  std::vector<AdvisoryCosts> gathered_out(n);
  eval_all(gathered, gathered_out.data());
  for (std::size_t k = 0; k < n; ++k) out[order[k]] = gathered_out[k];
}

}  // namespace

PolicyServer::PolicyServer(std::shared_ptr<const acasx::LogicTable> pairwise,
                           std::shared_ptr<const acasx::JointLogicTable> joint) {
  init_pair(std::move(pairwise));
  if (joint != nullptr) init_joint(std::move(joint));
}

void PolicyServer::init_pair(std::shared_ptr<const acasx::LogicTable> table) {
  expect(table != nullptr, "pairwise table provided");
  expect(table->num_entries() != 0, "pairwise table is solved/loaded");
  pair_config_ = table->config();
  pair_grid_ = table->grid();
  pair_slabs_ = ValueSlabs{};
  pair_slabs_.quant = Quantization::kNone;
  pair_slabs_.count = table->num_entries();
  pair_slabs_.f32 = table->values();
  pair_table_ = std::move(table);
}

void PolicyServer::init_joint(std::shared_ptr<const acasx::JointLogicTable> table) {
  expect(table != nullptr, "joint table provided");
  expect(table->num_entries() != 0, "joint table is solved/loaded");
  joint_config_ = table->config();
  joint_grid_ = table->grid();
  joint_slabs_ = ValueSlabs{};
  joint_slabs_.quant = Quantization::kNone;
  joint_slabs_.count = table->num_entries();
  joint_slabs_.f32 = table->values();
  joint_table_ = std::move(table);
  joint_loaded_ = true;
}

PolicyServer PolicyServer::open(const std::string& pairwise_path,
                                const std::string& joint_path) {
  PolicyServer server;

  auto pair_image = std::make_shared<const TableImage>(TableImage::open(pairwise_path));
  if (pair_image->kind_name() != kKindPairwise) {
    throw TableIoError("PolicyServer::open", "wrong table kind", pairwise_path);
  }
  const ValueSlabs pair_slabs = open_value_slabs(*pair_image);
  if (pair_slabs.quant == Quantization::kNone) {
    server.init_pair(std::make_shared<const acasx::LogicTable>(
        acasx::LogicTable::open_mapped(pair_image)));
  } else {
    server.pair_config_ = acasx::LogicTable::decode_config(*pair_image);
    server.pair_grid_ = server.pair_config_.space.grid();
    const std::size_t expected =
        (server.pair_config_.space.tau_max + 1) * server.pair_grid_.size() * kA * kA;
    if (pair_slabs.count != expected) {
      throw TableIoError("PolicyServer::open", "size mismatch", pairwise_path);
    }
    server.pair_slabs_ = pair_slabs;
  }
  server.pair_image_ = std::move(pair_image);

  if (!joint_path.empty()) {
    auto joint_image = std::make_shared<const TableImage>(TableImage::open(joint_path));
    if (joint_image->kind_name() != kKindJoint) {
      throw TableIoError("PolicyServer::open", "wrong table kind", joint_path);
    }
    const ValueSlabs joint_slabs = open_value_slabs(*joint_image);
    if (joint_slabs.quant == Quantization::kNone) {
      server.init_joint(std::make_shared<const acasx::JointLogicTable>(
          acasx::JointLogicTable::open_mapped(joint_image)));
    } else {
      server.joint_config_ = acasx::JointLogicTable::decode_config(*joint_image);
      server.joint_grid_ = server.joint_config_.grid();
      const std::size_t expected = server.joint_config_.secondary.num_slabs() *
                                   (server.joint_config_.space.tau_max + 1) *
                                   server.joint_grid_.size() * kA * kA;
      if (joint_slabs.count != expected) {
        throw TableIoError("PolicyServer::open", "size mismatch", joint_path);
      }
      server.joint_slabs_ = joint_slabs;
      server.joint_loaded_ = true;
    }
    server.joint_image_ = std::move(joint_image);
  }
  return server;
}

void PolicyServer::query_batch(std::span<const TrackQuery> queries, std::span<AdvisoryCosts> out,
                               const BatchOptions& options) const {
  expect(queries.size() == out.size(), "query and result spans are the same length");
  const std::size_t n = queries.size();
  if (n == 0) return;

  std::vector<std::uint64_t> keys;
  if (options.should_sort() && n > 1) {
    keys.resize(n);
    const std::size_t grid_size = pair_grid_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TrackQuery& q = queries[i];
      const TauBracket t = bracket_tau(q.tau_s, pair_config_.space.tau_max);
      keys[i] = t.lo * grid_size + pair_grid_.cell_index({q.h_ft, q.dh_own_fps, q.dh_int_fps});
    }
  }

  with_view(pair_slabs_, [&](const auto& view) {
    run_batch(queries, out, options, keys,
              [&](std::span<const TrackQuery> q, AdvisoryCosts* o, std::size_t begin,
                  std::size_t end) {
                eval_pair_range(view, pair_grid_, pair_config_.space.tau_max, q, o, begin, end);
              });
  });
}

void PolicyServer::query_batch(std::span<const JointTrackQuery> queries,
                               std::span<AdvisoryCosts> out,
                               const BatchOptions& options) const {
  expect(has_joint(), "server has a joint table");
  expect(queries.size() == out.size(), "query and result spans are the same length");
  const std::size_t n = queries.size();
  if (n == 0) return;

  std::vector<std::uint64_t> keys;
  if (options.should_sort() && n > 1) {
    keys.resize(n);
    const std::size_t grid_size = joint_grid_.size();
    const std::size_t layers = joint_config_.space.tau_max + 1;
    for (std::size_t i = 0; i < n; ++i) {
      const JointTrackQuery& q = queries[i];
      const std::size_t db = joint_config_.secondary.delta_bin(q.delta_s);
      const std::size_t slab = joint_config_.slab_index(db, q.sense);
      const TauBracket t = bracket_tau(
          (q.tau1_s + joint_config_.secondary.delta_value_s(db)) / joint_config_.dynamics.dt_s,
          joint_config_.space.tau_max);
      keys[i] = (slab * layers + t.lo) * grid_size +
                joint_grid_.cell_index({q.h1_ft, q.dh_own_fps, q.dh_int1_fps, q.h2_ft});
    }
  }

  with_view(joint_slabs_, [&](const auto& view) {
    run_batch(queries, out, options, keys,
              [&](std::span<const JointTrackQuery> q, AdvisoryCosts* o, std::size_t begin,
                  std::size_t end) {
                eval_joint_range(view, joint_grid_, joint_config_, q, o, begin, end);
              });
  });
}

void PolicyServer::action_costs(const TrackQuery& query,
                                std::span<double, acasx::kNumAdvisories> out) const {
  AdvisoryCosts result;
  query_batch({&query, 1}, {&result, 1});
  std::copy(result.costs.begin(), result.costs.end(), out.begin());
}

void PolicyServer::action_costs(const JointTrackQuery& query,
                                std::span<double, acasx::kNumAdvisories> out) const {
  AdvisoryCosts result;
  query_batch({&query, 1}, {&result, 1});
  std::copy(result.costs.begin(), result.costs.end(), out.begin());
}

}  // namespace cav::serving
