#include "serving/quantize.h"

#include <algorithm>
#include <cmath>

namespace cav::serving {

const char* quantization_name(Quantization q) {
  switch (q) {
    case Quantization::kNone: return "f32";
    case Quantization::kFloat16: return "f16";
    case Quantization::kInt8: return "int8";
  }
  return "?";
}

std::uint16_t f16_encode(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000U);
  const std::uint32_t abs = bits & 0x7FFFFFFFU;

  if (abs >= 0x7F800000U) {  // inf / nan
    const std::uint16_t mant = abs > 0x7F800000U ? 0x200U : 0U;  // keep nan-ness
    return static_cast<std::uint16_t>(sign | 0x7C00U | mant);
  }
  if (abs >= 0x477FF000U) {  // rounds to >= 2^16: overflow to inf
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (abs < 0x38800000U) {  // subnormal half (|x| < 2^-14), incl. zero
    if (abs < 0x33000000U) return sign;  // rounds to zero
    const std::uint32_t shift = 126U - (abs >> 23);  // 1..24
    const std::uint32_t mant = (abs & 0x7FFFFFU) | 0x800000U;
    const std::uint32_t rounded = mant >> (shift + 13);
    const std::uint32_t rem = mant & ((1U << (shift + 13)) - 1U);
    const std::uint32_t half = 1U << (shift + 12);
    std::uint32_t out = rounded;
    if (rem > half || (rem == half && (rounded & 1U))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }
  // Normal range: re-bias exponent, round mantissa to 10 bits (RNE).
  std::uint32_t out = ((abs >> 13) & 0x3FFU) | ((((abs >> 23) - 112U) & 0x1FU) << 10);
  const std::uint32_t rem = abs & 0x1FFFU;
  if (rem > 0x1000U || (rem == 0x1000U && (out & 1U))) ++out;  // may carry into exponent: exact
  return static_cast<std::uint16_t>(sign | out);
}

std::vector<std::uint16_t> f16_quantize(std::span<const float> values) {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = f16_encode(values[i]);
  return out;
}

std::vector<float> f16_dequantize(std::span<const std::uint16_t> values) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = f16_decode(values[i]);
  return out;
}

Int8Blocks int8_quantize(std::span<const float> values, std::size_t block_elems) {
  Int8Blocks out;
  out.block_elems = block_elems;
  out.values.resize(values.size());
  const std::size_t num_blocks = (values.size() + block_elems - 1) / block_elems;
  out.scale_offset.resize(2 * num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t begin = b * block_elems;
    const std::size_t end = std::min(values.size(), begin + block_elems);
    float lo = values[begin];
    float hi = values[begin];
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const float scale = (hi - lo) / 255.0F;
    out.scale_offset[2 * b] = scale;
    out.scale_offset[2 * b + 1] = lo;
    for (std::size_t i = begin; i < end; ++i) {
      const float q = scale > 0.0F ? (values[i] - lo) / scale : 0.0F;
      out.values[i] = static_cast<std::uint8_t>(
          std::clamp(std::lround(q), 0L, 255L));
    }
  }
  return out;
}

std::vector<float> int8_dequantize(std::span<const std::uint8_t> values,
                                   std::span<const float> scale_offset,
                                   std::size_t block_elems) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t b = i / block_elems;
    out[i] = scale_offset[2 * b + 1] + scale_offset[2 * b] * static_cast<float>(values[i]);
  }
  return out;
}

}  // namespace cav::serving
