#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>

namespace cav::bench {

std::string output_dir() {
  static const std::string dir = [] {
    std::filesystem::path p = std::filesystem::current_path() / "bench_artifacts";
    std::filesystem::create_directories(p);
    return p.string();
  }();
  return dir;
}

namespace {

/// A cached table is usable only if it was built from today's config.
bool compatible(const acasx::AcasXuConfig& cached, const acasx::AcasXuConfig& wanted) {
  return cached.space.h_ft == wanted.space.h_ft &&
         cached.space.dh_own_fps == wanted.space.dh_own_fps &&
         cached.space.dh_int_fps == wanted.space.dh_int_fps &&
         cached.space.tau_max == wanted.space.tau_max &&
         cached.costs.nmac_cost == wanted.costs.nmac_cost &&
         cached.costs.maneuver_cost == wanted.costs.maneuver_cost &&
         cached.costs.level_reward == wanted.costs.level_reward &&
         cached.costs.termination_cost == wanted.costs.termination_cost &&
         cached.dynamics.accel_noise_sigma_fps2 == wanted.dynamics.accel_noise_sigma_fps2;
}

}  // namespace

bool smoke() {
  static const bool value = [] {
    const char* env = std::getenv("CAV_BENCH_SMOKE");
    return env != nullptr && std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0;
  }();
  return value;
}

std::shared_ptr<const acasx::LogicTable> standard_table() {
  static std::shared_ptr<const acasx::LogicTable> table = [] {
    // Smoke runs solve the coarse space instead (same code paths) and skip
    // the cache so they never clobber a real standard table on disk.
    if (smoke()) {
      acasx::SolveStats stats;
      auto solved = std::make_shared<const acasx::LogicTable>(
          acasx::solve_logic_table(acasx::AcasXuConfig::coarse(), &pool(), &stats));
      std::printf("[setup] smoke mode: solved coarse logic table in %.2f s\n",
                  stats.wall_seconds);
      return solved;
    }

    const acasx::AcasXuConfig wanted = acasx::AcasXuConfig::standard();
    const std::string cache_path = output_dir() + "/standard_table.bin";

    if (std::filesystem::exists(cache_path)) {
      try {
        auto cached = std::make_shared<const acasx::LogicTable>(
            acasx::LogicTable::load(cache_path));
        if (compatible(cached->config(), wanted)) {
          std::printf("[setup] loaded cached logic table from %s\n", cache_path.c_str());
          return cached;
        }
        std::printf("[setup] cached table config outdated, re-solving\n");
      } catch (const std::exception& e) {
        std::printf("[setup] cache unreadable (%s), re-solving\n", e.what());
      }
    }

    acasx::SolveStats stats;
    auto solved = std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(wanted, &pool(), &stats));
    std::printf("[setup] solved standard logic table: %zu states x %zu layers in %.2f s\n",
                stats.states_per_layer, stats.layers, stats.wall_seconds);
    try {
      solved->save(cache_path);
    } catch (const std::exception& e) {
      std::printf("[setup] could not cache table (%s)\n", e.what());
    }
    return solved;
  }();
  return table;
}

}  // namespace cav::bench
