#include "bench_common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

namespace cav::bench {

namespace {

// --json state: set once by init(), flushed by an atexit handler so every
// bench gets the artifact without per-bench bookkeeping.
std::string json_path;                                       // NOLINT
std::string bench_name = "bench";                            // NOLINT
std::vector<std::pair<std::string, double>> metrics;         // NOLINT
std::chrono::steady_clock::time_point bench_start;           // NOLINT

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json_at_exit() {
  if (json_path.empty()) return;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_start).count();
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", json_path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n"
      << "  \"smoke\": " << (smoke() ? "true" : "false") << ",\n"
      << "  \"wall_s\": " << wall_s << ",\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << json_escape(metrics[i].first)
        << "\": " << metrics[i].second;
  }
  out << (metrics.empty() ? "" : "\n  ") << "}\n}\n";
}

}  // namespace

void init(int argc, char** argv) {
  bench_start = std::chrono::steady_clock::now();
  if (argc > 0) {
    bench_name = std::filesystem::path(argv[0]).filename().string();
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
  }
  if (!json_path.empty()) std::atexit(write_json_at_exit);
}

void record_metric(const std::string& name, double value) {
  for (auto& [key, stored] : metrics) {
    if (key == name) {
      stored = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

std::string output_dir() {
  static const std::string dir = [] {
    std::filesystem::path p = std::filesystem::current_path() / "bench_artifacts";
    std::filesystem::create_directories(p);
    return p.string();
  }();
  return dir;
}

namespace {

/// A cached table is usable only if it was built from today's config.
bool compatible(const acasx::AcasXuConfig& cached, const acasx::AcasXuConfig& wanted) {
  return cached.space.h_ft == wanted.space.h_ft &&
         cached.space.dh_own_fps == wanted.space.dh_own_fps &&
         cached.space.dh_int_fps == wanted.space.dh_int_fps &&
         cached.space.tau_max == wanted.space.tau_max &&
         cached.costs.nmac_cost == wanted.costs.nmac_cost &&
         cached.costs.maneuver_cost == wanted.costs.maneuver_cost &&
         cached.costs.level_reward == wanted.costs.level_reward &&
         cached.costs.termination_cost == wanted.costs.termination_cost &&
         cached.dynamics.accel_noise_sigma_fps2 == wanted.dynamics.accel_noise_sigma_fps2;
}

}  // namespace

bool smoke() {
  static const bool value = [] {
    const char* env = std::getenv("CAV_BENCH_SMOKE");
    return env != nullptr && std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0;
  }();
  return value;
}

std::shared_ptr<const acasx::LogicTable> standard_table() {
  static std::shared_ptr<const acasx::LogicTable> table = [] {
    // Smoke runs solve the coarse space instead (same code paths) and skip
    // the cache so they never clobber a real standard table on disk.
    if (smoke()) {
      acasx::SolveStats stats;
      auto solved = std::make_shared<const acasx::LogicTable>(
          acasx::solve_logic_table(acasx::AcasXuConfig::coarse(), &pool(), &stats));
      std::printf("[setup] smoke mode: solved coarse logic table in %.2f s\n",
                  stats.wall_seconds);
      return solved;
    }

    const acasx::AcasXuConfig wanted = acasx::AcasXuConfig::standard();
    const std::string cache_path = output_dir() + "/standard_table.bin";

    if (std::filesystem::exists(cache_path)) {
      try {
        auto cached = std::make_shared<const acasx::LogicTable>(
            acasx::LogicTable::load(cache_path));
        if (compatible(cached->config(), wanted)) {
          std::printf("[setup] loaded cached logic table from %s\n", cache_path.c_str());
          return cached;
        }
        std::printf("[setup] cached table config outdated, re-solving\n");
      } catch (const std::exception& e) {
        std::printf("[setup] cache unreadable (%s), re-solving\n", e.what());
      }
    }

    acasx::SolveStats stats;
    auto solved = std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(wanted, &pool(), &stats));
    std::printf("[setup] solved standard logic table: %zu states x %zu layers in %.2f s\n",
                stats.states_per_layer, stats.layers, stats.wall_seconds);
    try {
      solved->save(cache_path);
    } catch (const std::exception& e) {
      std::printf("[setup] could not cache table (%s)\n", e.what());
    }
    return solved;
  }();
  return table;
}

}  // namespace cav::bench
