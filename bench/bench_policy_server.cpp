// E15 — The policy-serving engine (serving/policy_server.h): batched vs
// single-query throughput, per-batch p99 latency, quantized serving
// (f16/int8) policy-disagreement rates, and RSS-per-process when several
// processes mmap the same TableImage.
//
// The single-query BASELINE below reproduces the pre-serving
// implementation of LogicTable::action_costs verbatim — a heap-allocating
// grid scatter per query and action-outer / vertex-inner accumulation —
// because that is the path every caller paid before the serving layer
// existed.  The batched path is PolicyServer::query_batch over the mmap'd
// image: allocation-free, bucketed by (tau layer, grid cell), with the
// action loop contiguous and vectorizable.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "acasx/joint_solver.h"
#include "acasx/online_logic.h"
#include "bench_common.h"
#include "serving/policy_server.h"

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#endif

namespace {

using namespace cav;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The pre-serving implementation of LogicTable::action_costs, kept here
/// as the measured single-query baseline.
std::array<double, acasx::kNumAdvisories> seed_action_costs(const acasx::LogicTable& table,
                                                            const serving::TrackQuery& q) {
  const auto& config = table.config();
  const double tau_max = static_cast<double>(config.space.tau_max);
  const double tau = std::clamp(q.tau_s, 0.0, tau_max);
  const auto t_lo = static_cast<std::size_t>(tau);
  const std::size_t t_hi = std::min<std::size_t>(t_lo + 1, config.space.tau_max);
  const double t_frac = tau - static_cast<double>(t_lo);

  const auto vertices = table.grid().scatter({q.h_ft, q.dh_own_fps, q.dh_int_fps});

  std::array<double, acasx::kNumAdvisories> costs{};
  for (std::size_t ai = 0; ai < acasx::kNumAdvisories; ++ai) {
    const auto action = static_cast<acasx::Advisory>(ai);
    double lo = 0.0;
    double hi = 0.0;
    for (const auto& v : vertices) {
      lo += v.weight * static_cast<double>(table.at(t_lo, v.flat, q.ra, action));
      if (t_hi != t_lo) {
        hi += v.weight * static_cast<double>(table.at(t_hi, v.flat, q.ra, action));
      }
    }
    costs[ai] = (t_hi == t_lo) ? lo : lo * (1.0 - t_frac) + hi * t_frac;
  }
  return costs;
}

std::vector<serving::TrackQuery> random_pair_queries(const acasx::AcasXuConfig& config,
                                                     std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto span = [&](const UniformAxis& axis) {
    // 10% overshoot each side exercises the boundary clamp.
    const double pad = 0.1 * (axis.hi() - axis.lo());
    return axis.lo() - pad + u01(rng) * (axis.hi() - axis.lo() + 2.0 * pad);
  };
  std::vector<serving::TrackQuery> queries(n);
  for (auto& q : queries) {
    q.tau_s = u01(rng) * (static_cast<double>(config.space.tau_max) + 2.0);
    q.h_ft = span(config.space.h_ft);
    q.dh_own_fps = span(config.space.dh_own_fps);
    q.dh_int_fps = span(config.space.dh_int_fps);
    q.ra = static_cast<acasx::Advisory>(rng() % acasx::kNumAdvisories);
  }
  return queries;
}

std::vector<serving::JointTrackQuery> random_joint_queries(const acasx::JointConfig& config,
                                                           std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto span = [&](const UniformAxis& axis) {
    const double pad = 0.1 * (axis.hi() - axis.lo());
    return axis.lo() - pad + u01(rng) * (axis.hi() - axis.lo() + 2.0 * pad);
  };
  std::vector<serving::JointTrackQuery> queries(n);
  for (auto& q : queries) {
    q.tau1_s = u01(rng) * (static_cast<double>(config.space.tau_max) + 2.0);
    q.delta_s = u01(rng) * config.secondary.delta_step_s *
                static_cast<double>(config.secondary.num_delta_bins + 1);
    q.h1_ft = span(config.space.h_ft);
    q.dh_own_fps = span(config.space.dh_own_fps);
    q.dh_int1_fps = span(config.space.dh_int_fps);
    q.h2_ft = span(config.secondary.h2_ft);
    q.sense = static_cast<acasx::SecondarySense>(rng() % acasx::kNumSecondarySenses);
    q.ra = static_cast<acasx::Advisory>(rng() % acasx::kNumAdvisories);
  }
  return queries;
}

/// Run `queries` through `server` in fixed-size batches, returning
/// (total seconds, p99 per-batch seconds).
std::pair<double, double> timed_batches(const serving::PolicyServer& server,
                                        std::span<const serving::TrackQuery> queries,
                                        std::span<serving::AdvisoryCosts> out,
                                        std::size_t batch, const serving::BatchOptions& options) {
  std::vector<double> batch_s;
  batch_s.reserve(queries.size() / batch + 1);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); i += batch) {
    const std::size_t n = std::min(batch, queries.size() - i);
    const auto t0 = std::chrono::steady_clock::now();
    server.query_batch(queries.subspan(i, n), out.subspan(i, n), options);
    batch_s.push_back(seconds_since(t0));
  }
  const double total = seconds_since(start);
  std::sort(batch_s.begin(), batch_s.end());
  const double p99 = batch_s[std::min(batch_s.size() - 1,
                                      static_cast<std::size_t>(0.99 * batch_s.size()))];
  return {total, p99};
}

/// Fraction of queries whose selected advisory differs between two cost
/// sets (the metric that matters: argmin flips, not cost deltas).
double disagreement_rate(std::span<const serving::TrackQuery> queries,
                         std::span<const serving::AdvisoryCosts> reference,
                         std::span<const serving::AdvisoryCosts> quantized) {
  std::size_t differ = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto ref = acasx::select_advisory(reference[i].costs, acasx::Sense::kNone,
                                            queries[i].ra);
    const auto quant = acasx::select_advisory(quantized[i].costs, acasx::Sense::kNone,
                                              queries[i].ra);
    if (ref != quant) ++differ;
  }
  return static_cast<double>(differ) / static_cast<double>(queries.size());
}

double joint_disagreement_rate(std::span<const serving::JointTrackQuery> queries,
                               std::span<const serving::AdvisoryCosts> reference,
                               std::span<const serving::AdvisoryCosts> quantized) {
  std::size_t differ = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto ref = acasx::select_advisory(reference[i].costs, acasx::Sense::kNone,
                                            queries[i].ra);
    const auto quant = acasx::select_advisory(quantized[i].costs, acasx::Sense::kNone,
                                              queries[i].ra);
    if (ref != quant) ++differ;
  }
  return static_cast<double>(differ) / static_cast<double>(queries.size());
}

#ifdef __linux__
/// Sum an smaps field (kB) over the mappings whose pathname contains
/// `needle`.  Filtering to the image-file mappings keeps the measurement
/// honest under fork: a forked child inherits every COW page of the
/// parent bench (solved tables, query vectors), which would otherwise
/// swamp VmRSS; the file-backed table mappings are exactly the memory the
/// serving layer is accountable for.
double smaps_mapped_kb(const char* needle, const char* field) {
  std::ifstream in("/proc/self/smaps");
  std::string line;
  bool tracking = false;
  double sum_kb = 0.0;
  while (std::getline(in, line)) {
    // Mapping headers start with a hex address range ("5603f1-5603f9 ...");
    // field rows start with a name and a colon ("Rss:   4 kB").
    const bool header = !line.empty() &&
                        std::isxdigit(static_cast<unsigned char>(line[0])) &&
                        line.find('-') != std::string::npos &&
                        line.find('-') < line.find(' ');
    if (header) {
      tracking = line.find(needle) != std::string::npos;
    } else if (tracking && line.rfind(field, 0) == 0) {
      std::istringstream row(line.substr(std::strlen(field)));
      double kb = 0.0;
      row >> kb;
      sum_kb += kb;
    }
  }
  return sum_kb;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::banner("E15: policy serving engine (batch throughput, quantized serving, mmap RSS)");

  const auto pair_table = bench::standard_table();
  const acasx::JointConfig joint_config =
      bench::smoke() ? acasx::JointConfig::coarse() : acasx::JointConfig::standard();
  const auto joint_table = std::make_shared<const acasx::JointLogicTable>(
      acasx::solve_joint_table(joint_config, &bench::pool()));

  const std::string dir = bench::output_dir();
  const struct {
    serving::Quantization quant;
    const char* tag;
  } kModes[] = {{serving::Quantization::kNone, "f32"},
                {serving::Quantization::kFloat16, "f16"},
                {serving::Quantization::kInt8, "int8"}};

  // --- Dump both tables at every precision -------------------------------
  std::printf("table dumps (pairwise %zu entries, joint %zu entries):\n",
              pair_table->num_entries(), joint_table->num_entries());
  double joint_bytes_f32 = 0.0;
  for (const auto& mode : kModes) {
    const std::string pair_path = dir + "/e15_pair_" + mode.tag + ".img";
    const std::string joint_path = dir + "/e15_joint_" + mode.tag + ".img";
    const auto t0 = std::chrono::steady_clock::now();
    pair_table->save(pair_path, mode.quant);
    joint_table->save(joint_path, mode.quant);
    const double dump_s = seconds_since(t0);

    const auto server = serving::PolicyServer::open(pair_path, joint_path);
    const double joint_mb = static_cast<double>(server.joint_payload_bytes()) / 1e6;
    if (mode.quant == serving::Quantization::kNone) {
      joint_bytes_f32 = static_cast<double>(server.joint_payload_bytes());
    } else {
      const double ratio = static_cast<double>(server.joint_payload_bytes()) / joint_bytes_f32;
      bench::record_metric(std::string("e15.joint.") + mode.tag + "_bytes_ratio", ratio);
    }
    std::printf("  %-4s dump %7.3f s   joint payload %8.2f MB\n", mode.tag, dump_s, joint_mb);
  }

  // --- Batched vs single-query throughput (pairwise, f32) ----------------
  const std::size_t kQueries = bench::smoke() ? 20'000 : 2'000'000;
  const std::size_t kBatch = bench::smoke() ? 4'096 : 65'536;
  const auto queries = random_pair_queries(pair_table->config(), kQueries, 2016);
  std::vector<serving::AdvisoryCosts> out(kQueries);

  const auto f32_server =
      serving::PolicyServer::open(dir + "/e15_pair_f32.img", dir + "/e15_joint_f32.img");

  // Baseline: the pre-serving single-query implementation.
  const auto single_start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (const auto& q : queries) sink += seed_action_costs(*pair_table, q)[0];
  const double single_s = seconds_since(single_start);

  // The current single-query API (batch-of-one over the serving kernel).
  const auto api_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& q = queries[i];
    pair_table->action_costs(q.tau_s, q.h_ft, q.dh_own_fps, q.dh_int_fps, q.ra, out[i].costs);
  }
  const double api_s = seconds_since(api_start);

  serving::BatchOptions unsorted;
  unsorted.sort_by_cell = serving::CellSort::kOff;
  const auto [unsorted_s, unsorted_p99] =
      timed_batches(f32_server, queries, out, kBatch, unsorted);

  serving::BatchOptions sorted;
  sorted.sort_by_cell = serving::CellSort::kOn;
  const auto [batch_s, batch_p99] = timed_batches(f32_server, queries, out, kBatch, sorted);

  // One mega-batch: cell-sorting the whole query set turns the table
  // accesses into a single ascending-address sweep, so every touched table
  // line is fetched from DRAM at most once per batch instead of once per
  // query neighbourhood.
  const auto [mega_s, mega_p99] = timed_batches(f32_server, queries, out, kQueries, sorted);

  // kAuto resolves from the pool size: sort on for >= 2 workers, off on a
  // single-threaded pool (the measured break-even — the sequential sort
  // only pays when it feeds perfectly-local parallel shards).
  serving::BatchOptions pooled;
  pooled.pool = &bench::pool();
  const auto [pooled_s, pooled_p99] = timed_batches(f32_server, queries, out, kBatch, pooled);

  const auto qps = [](std::size_t n, double s) { return static_cast<double>(n) / s; };
  std::printf("\npairwise throughput (%zu random queries, batch %zu):\n", kQueries, kBatch);
  std::printf("  single query, seed path:      %10.0f advisories/s\n",
              qps(kQueries, single_s));
  std::printf("  single query, current API:    %10.0f advisories/s\n", qps(kQueries, api_s));
  std::printf("  batched, unsorted:            %10.0f advisories/s  (p99 %6.3f ms)\n",
              qps(kQueries, unsorted_s), unsorted_p99 * 1e3);
  std::printf("  batched, cell-sorted:         %10.0f advisories/s  (p99 %6.3f ms)\n",
              qps(kQueries, batch_s), batch_p99 * 1e3);
  std::printf("  batched, sorted mega-batch:   %10.0f advisories/s\n", qps(kQueries, mega_s));
  std::printf("  batched, auto(%s) + pool(%zu): %10.0f advisories/s  (p99 %6.3f ms)\n",
              pooled.should_sort() ? "sort" : "no-sort", bench::pool().thread_count(),
              qps(kQueries, pooled_s), pooled_p99 * 1e3);
  // Headline: the best batched configuration (and its p99) vs the seed
  // single-query baseline.
  const struct {
    double total_s;
    double p99_s;
  } kBatchRuns[] = {{unsorted_s, unsorted_p99}, {batch_s, batch_p99}, {mega_s, mega_p99},
                    {pooled_s, pooled_p99}};
  double best_batch_s = kBatchRuns[0].total_s;
  double best_batch_p99 = kBatchRuns[0].p99_s;
  for (const auto& run : kBatchRuns) {
    if (run.total_s < best_batch_s) {
      best_batch_s = run.total_s;
      best_batch_p99 = run.p99_s;
    }
  }
  std::printf("  speedup batched vs baseline:  %10.2fx\n", single_s / best_batch_s);
  std::printf("  (checksum %g)\n", sink);

  bench::record_metric("e15.pair.single_seed_qps", qps(kQueries, single_s));
  bench::record_metric("e15.pair.single_api_qps", qps(kQueries, api_s));
  bench::record_metric("e15.pair.batch_qps", qps(kQueries, best_batch_s));
  bench::record_metric("e15.pair.batch_p99_s", best_batch_p99);
  bench::record_metric("e15.pair.speedup_batched", single_s / best_batch_s);

  // --- Quantized serving: policy disagreement vs the f32 table -----------
  const std::size_t kSample = bench::smoke() ? 5'000 : 200'000;
  const auto sample = random_pair_queries(pair_table->config(), kSample, 99);
  std::vector<serving::AdvisoryCosts> reference(kSample);
  std::vector<serving::AdvisoryCosts> quantized(kSample);
  f32_server.query_batch(sample, reference);

  const auto joint_sample = random_joint_queries(joint_config, kSample, 7);
  std::vector<serving::AdvisoryCosts> joint_reference(kSample);
  std::vector<serving::AdvisoryCosts> joint_quantized(kSample);
  f32_server.query_batch(joint_sample, joint_reference);

  std::printf("\nquantized serving, policy disagreement vs f32 (%zu samples):\n", kSample);
  for (const auto& mode : kModes) {
    if (mode.quant == serving::Quantization::kNone) continue;
    const auto server = serving::PolicyServer::open(dir + "/e15_pair_" + mode.tag + ".img",
                                                    dir + "/e15_joint_" + mode.tag + ".img");
    server.query_batch(sample, quantized);
    server.query_batch(joint_sample, joint_quantized);
    const double pair_rate = disagreement_rate(sample, reference, quantized);
    const double joint_rate =
        joint_disagreement_rate(joint_sample, joint_reference, joint_quantized);
    std::printf("  %-4s pairwise %7.4f %%   joint %7.4f %%\n", mode.tag, 100.0 * pair_rate,
                100.0 * joint_rate);
    bench::record_metric(std::string("e15.pair.") + mode.tag + "_disagree_rate", pair_rate);
    bench::record_metric(std::string("e15.joint.") + mode.tag + "_disagree_rate", joint_rate);
  }

#ifdef __linux__
  // --- RSS per process under multi-process mmap --------------------------
  // Fork children that each open the same f32 images, touch every payload
  // page with a query sweep, and report the RSS and PSS of the image-file
  // mappings alone.  With MAP_SHARED file pages, RSS counts the shared
  // pages in every process while PSS divides them by the number of
  // sharers — PSS falling toward RSS/k is the measured proof that k
  // processes pay one physical copy.
  const int kProcs = bench::smoke() ? 2 : 4;
  int pipes[2];
  if (pipe(pipes) == 0) {
    for (int p = 0; p < kProcs; ++p) {
      const pid_t pid = fork();
      if (pid == 0) {
        const auto server = serving::PolicyServer::open(dir + "/e15_pair_f32.img",
                                                        dir + "/e15_joint_f32.img");
        const auto touch = random_pair_queries(server.pairwise_config(), 1'000, 11);
        std::vector<serving::AdvisoryCosts> touched(touch.size());
        server.query_batch(touch, touched);
        // Touch the full payloads so every page is resident.
        double total = 0.0;
        const float* pv = server.pairwise_table()->values();
        for (std::size_t i = 0; i < server.pairwise_table()->num_entries(); i += 1024) {
          total += pv[i];
        }
        const float* jv = server.joint_table()->values();
        for (std::size_t i = 0; i < server.joint_table()->num_entries(); i += 1024) {
          total += jv[i];
        }
        const double rss_kb = smaps_mapped_kb(".img", "Rss:");
        const double pss_kb = smaps_mapped_kb(".img", "Pss:");
        double payload[3] = {rss_kb, pss_kb, total};
        [[maybe_unused]] const ssize_t n = write(pipes[1], payload, sizeof payload);
        _exit(0);
      }
    }
    double rss_sum_kb = 0.0;
    double pss_sum_kb = 0.0;
    for (int p = 0; p < kProcs; ++p) {
      double payload[3] = {0.0, 0.0, 0.0};
      if (read(pipes[0], payload, sizeof payload) == sizeof payload) {
        rss_sum_kb += payload[0];
        pss_sum_kb += payload[1];
      }
      wait(nullptr);
    }
    close(pipes[0]);
    close(pipes[1]);
    const double tables_mb =
        static_cast<double>(f32_server.pairwise_payload_bytes() +
                            f32_server.joint_payload_bytes()) / 1e6;
    std::printf("\nmulti-process mmap (%d processes, %0.1f MB of tables):\n", kProcs,
                tables_mb);
    std::printf("  mean table RSS %8.1f MB/process   mean table PSS %8.1f MB/process\n",
                rss_sum_kb / kProcs / 1e3, pss_sum_kb / kProcs / 1e3);
    bench::record_metric("e15.mmap.rss_mb_per_proc", rss_sum_kb / kProcs / 1e3);
    bench::record_metric("e15.mmap.pss_mb_per_proc", pss_sum_kb / kProcs / 1e3);
  }
#endif
  return 0;
}
