// E3 — Fig. 6: "Fitness improvement over generations".
//
// Paper setup (§VII): population 200, 5 generations, every encounter
// evaluated by 100 stochastic simulations with
// fitness = (1/100) sum 10000/(1+d_k).  The figure plots the fitness of
// each of the 1000 evaluated encounters in evaluation order: the first
// generation is mostly low-fitness, later generations increasingly high —
// "the GA was guiding the search to increasingly challenging situations".
//
// This bench reruns that exact experiment (CAV_E3_SCALE=0.1 shrinks it for
// smoke runs), prints the per-generation min/mean/max rows, renders the
// Fig. 6 scatter as ASCII, and writes the full series to CSV.
#include <cstdio>
#include <map>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/logbook.h"
#include "core/scenario_search.h"
#include "sim/acasx_cas.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  double scale = bench::smoke() ? 0.05 : 1.0;
  if (const char* env = std::getenv("CAV_E3_SCALE")) scale = std::atof(env);

  bench::banner("E3: GA fitness over generations (paper Fig. 6)");
  const auto table = bench::standard_table();
  const auto acas = sim::AcasXuCas::factory(table);

  core::ScenarioSearchConfig config;
  config.ga.population_size = std::max<std::size_t>(10, static_cast<std::size_t>(200 * scale));
  config.ga.generations = 5;
  config.ga.seed = 2016;
  config.fitness.runs_per_encounter =
      std::max<std::size_t>(10, static_cast<std::size_t>(100 * scale));

  std::printf("population %zu, %zu generations, %zu runs/encounter (scale %.2f)\n",
              config.ga.population_size, config.ga.generations,
              config.fitness.runs_per_encounter, scale);

  std::printf("\n%-11s %-12s %-12s %-12s\n", "generation", "min", "mean", "max");
  const auto result = core::search_challenging_scenarios(
      config, acas, acas, &bench::pool(), [](const ga::GenerationStats& s) {
        std::printf("%-11zu %-12.1f %-12.1f %-12.1f\n", s.generation, s.min_fitness,
                    s.mean_fitness, s.max_fitness);
      });

  // Fig. 6 as ASCII: fitness per encounter in evaluation order.
  AsciiPlotOptions opts;
  opts.title = "Fig. 6 reproduction: fitness of each evaluated encounter (eval order)";
  opts.height = 18;
  opts.width = 76;
  opts.x_label = "encounter #";
  opts.y_label = "fitness";
  std::printf("\n%s\n", ascii_plot(result.ga.fitness_by_evaluation, opts).c_str());

  const std::string csv_path = bench::output_dir() + "/fig6_fitness_by_evaluation.csv";
  {
    CsvWriter csv(csv_path);
    csv.header({"evaluation", "fitness"});
    for (std::size_t i = 0; i < result.ga.fitness_by_evaluation.size(); ++i) {
      csv.cell(i).cell(result.ga.fitness_by_evaluation[i]);
      csv.end_row();
    }
  }
  std::printf("series CSV: %s\n", csv_path.c_str());
  std::printf("search wall time: %.1f s (paper fn.5: ~300 s on a 2016 laptop, serial Java)\n",
              result.wall_seconds);

  bench::banner("top challenging encounters found");
  std::printf("%-8s %-10s %-56s\n", "fitness", "NMAC", "geometry");
  for (const auto& found : result.top) {
    std::printf("%-8.0f %zu/%-8zu %s\n", found.fitness, found.detail.nmac_count,
                found.detail.runs, core::describe(found.params).c_str());
  }

  // Quantify "most of them are tail approach situations" (paper SVII): the
  // geometry mix of the HIGH-FITNESS encounters per generation.
  bench::banner("geometry mix of challenging encounters (fitness >= 5000) per generation");
  std::printf("%-11s %-8s %-14s %-10s %-10s %-8s %-8s\n", "generation", "total", "tail-approach",
              "overtake", "crossing", "head-on", "other");
  for (std::size_t gen = 0; gen < config.ga.generations; ++gen) {
    std::map<core::EncounterClass, std::size_t> mix;
    std::size_t total = 0;
    for (const auto& e : result.logbook.entries()) {
      if (e.generation != gen || e.fitness < 5000.0) continue;
      ++mix[core::classify(e.params)];
      ++total;
    }
    std::printf("%-11zu %-8zu %-14zu %-10zu %-10zu %-8zu %-8zu\n", gen, total,
                mix[core::EncounterClass::kTailApproach], mix[core::EncounterClass::kOvertake],
                mix[core::EncounterClass::kCrossing], mix[core::EncounterClass::kHeadOn],
                mix[core::EncounterClass::kOther]);
  }

  // SVIII extension: areas of the space, mined from the logged data.
  const auto regions = core::find_regions(result.logbook, 8000.0, 2, config.ranges);
  if (!regions.empty()) {
    bench::banner("high-fitness regions (SVIII clustering extension)");
    for (const auto& region : regions) {
      std::printf("%s\n\n", core::describe_region(region).c_str());
    }
  }
  const std::string logbook_path = bench::output_dir() + "/fig6_search_logbook.csv";
  result.logbook.save_csv(logbook_path);
  std::printf("full search logbook: %s\n", logbook_path.c_str());

  // Headline shape checks, printed so a human (or EXPERIMENTS.md) can
  // compare against the paper's description of Fig. 6.
  const auto& gens = result.ga.generations;
  std::printf("\nshape checks:\n");
  std::printf("  first generation mean fitness:  %8.1f\n", gens.front().mean_fitness);
  std::printf("  last generation mean fitness:   %8.1f  (paper: increases over generations)\n",
              gens.back().mean_fitness);
  std::printf("  best encounter fitness:         %8.1f  (paper: approaches 10000 = reliable collision)\n",
              result.ga.best.fitness);
  return 0;
}
