// E5 — GA vs random search (the §V claim, demonstrated in the authors'
// earlier work [7]): with an identical evaluation budget, the GA reaches
// high-fitness (challenging) encounters that random search reaches later
// or not at all.
//
// Metric: evaluations needed to first reach a fitness threshold, plus the
// best fitness achieved, across seeds.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/scenario_search.h"
#include "encounter/statistical_model.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"
#include "util/stats.h"

namespace {

/// First evaluation index reaching `threshold`, or -1.
int evals_to_threshold(const std::vector<double>& series, double threshold) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] >= threshold) return static_cast<int>(i) + 1;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  double scale = bench::smoke() ? 0.05 : 1.0;
  if (const char* env = std::getenv("CAV_E5_SCALE")) scale = std::atof(env);

  bench::banner("E5: GA vs random search at equal budget (paper SV / ref [7])");
  const auto table = bench::standard_table();
  const auto acas = sim::AcasXuCas::factory(table);

  core::ScenarioSearchConfig config;
  config.ga.population_size = std::max<std::size_t>(10, static_cast<std::size_t>(60 * scale));
  config.ga.generations = 5;
  config.fitness.runs_per_encounter =
      std::max<std::size_t>(10, static_cast<std::size_t>(50 * scale));
  // Search the WIDE space (safe passes included, see monte_carlo_ranges):
  // inside the paper's conflict-only ranges the blind-spot region occupies
  // several percent of the volume and random search finds it in tens of
  // draws; widening the space makes "challenging" genuinely rare, which is
  // the regime where ref [7] observed random search struggling.
  config.ranges = encounter::monte_carlo_ranges();

  const double threshold = 9000.0;  // "reliably collides" fitness
  std::printf("budget: %zu evaluations x %zu runs each; threshold fitness %.0f\n",
              config.ga.population_size * config.ga.generations,
              config.fitness.runs_per_encounter, threshold);

  std::printf("\n%-6s %-22s %-22s %-14s %-14s\n", "seed", "GA evals-to-thresh",
              "RS evals-to-thresh", "GA best", "RS best");

  const std::string csv_path = bench::output_dir() + "/ga_vs_random.csv";
  CsvWriter csv(csv_path);
  csv.header({"seed", "ga_evals_to_threshold", "rs_evals_to_threshold", "ga_best", "rs_best"});

  RunningStats ga_best_stats;
  RunningStats rs_best_stats;
  int ga_hits = 0;
  int rs_hits = 0;
  int ga_wins = 0;
  const int seeds = 5;
  for (int seed = 1; seed <= seeds; ++seed) {
    config.ga.seed = static_cast<std::uint64_t>(seed);
    const auto ga_result =
        core::search_challenging_scenarios(config, acas, acas, &cav::bench::pool());
    const auto rs_result = core::random_search_scenarios(config, acas, acas, &cav::bench::pool());

    const int ga_evals = evals_to_threshold(ga_result.ga.fitness_by_evaluation, threshold);
    const int rs_evals = evals_to_threshold(rs_result.ga.fitness_by_evaluation, threshold);
    if (ga_evals > 0) ++ga_hits;
    if (rs_evals > 0) ++rs_hits;
    const double ga_best = ga_result.best_fitness();
    const double rs_best = rs_result.best_fitness();
    if (ga_best > rs_best) ++ga_wins;
    ga_best_stats.add(ga_best);
    rs_best_stats.add(rs_best);

    std::printf("%-6d %-22d %-22d %-14.1f %-14.1f\n", seed, ga_evals, rs_evals, ga_best, rs_best);
    csv.cell(seed).cell(ga_evals).cell(rs_evals).cell(ga_best).cell(rs_best);
    csv.end_row();
  }

  std::printf("\nsummary over %d seeds:\n", seeds);
  std::printf("  GA reached threshold in %d/%d seeds; random search in %d/%d\n", ga_hits, seeds,
              rs_hits, seeds);
  std::printf("  GA best fitness mean %.1f vs random %.1f; GA better in %d/%d seeds\n",
              ga_best_stats.mean(), rs_best_stats.mean(), ga_wins, seeds);
  std::printf("  CSV: %s\n", csv_path.c_str());
  std::printf("\npaper expectation: the GA finds challenging cases that random search\n"
              "\"took a long time to find\" — fewer evaluations to threshold and a\n"
              "higher best fitness at equal budget.\n");
  return 0;
}
