// E2 — Fig. 5: a head-on encounter resolved by ACAS XU with coordination
// (own-ship climbs, intruder descends).  Reproduces the figure as ASCII
// side/top views plus the quantitative claim that head-on encounters end
// in mid-air collision in fewer than 5 of 100 runs (§VII), against the
// unequipped / uncoordinated ablations.
#include <cstdio>

#include "bench_common.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/trajectory.h"
#include "util/csv.h"

namespace {

void evaluate_row(const char* label, const cav::core::EncounterEvaluation& eval) {
  std::printf("%-24s %4zu/%zu     %9.1f     %8.1f      %5.0f%%\n", label, eval.nmac_count,
              eval.runs, eval.mean_miss_m, eval.fitness, 100.0 * eval.alert_fraction_own);
}

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  bench::banner("E2: head-on encounter with coordination (paper Fig. 5)");
  const auto table = bench::standard_table();
  const auto acas = sim::AcasXuCas::factory(table);
  const encounter::EncounterParams head_on = encounter::head_on();

  // --- One instrumented run for the Fig. 5 picture. ---
  core::FitnessConfig trace_config;
  trace_config.runs_per_encounter = 1;
  trace_config.sim.record_trajectory = true;
  const core::EncounterEvaluator tracer(trace_config, acas, acas);
  const sim::SimResult run = tracer.run_once(head_on, /*stream_id=*/1, /*run_index=*/0, true);

  std::printf("\n%s\n", sim::render_side_view(run.trajectory).c_str());
  std::printf("own-ship: first alert at t=%.0f s, final advisory %s; intruder: %s\n",
              run.own.first_alert_time_s, run.own.final_advisory.c_str(),
              run.intruder.final_advisory.c_str());
  std::printf("min separation %.1f m at t=%.1f s — NMAC: %s\n", run.proximity.min_distance_m,
              run.proximity.time_of_min_distance_s, run.nmac ? "YES" : "no");

  const std::string csv_path = bench::output_dir() + "/fig5_headon_trajectory.csv";
  sim::write_trajectory_csv(run.trajectory, csv_path);
  std::printf("trajectory CSV: %s\n", csv_path.c_str());

  // --- The quantitative claim over 100 stochastic runs. ---
  bench::banner("100-run accident rates (paper SVII: head-on < 5/100)");
  core::FitnessConfig eval_config;
  eval_config.runs_per_encounter = 100;

  std::printf("%-24s %-12s %-13s %-13s %-8s\n", "configuration", "NMAC", "mean miss[m]",
              "fitness", "alerted");

  const core::EncounterEvaluator equipped(eval_config, acas, acas);
  evaluate_row("ACAS-XU + coordination", equipped.evaluate(head_on, 1));

  core::FitnessConfig no_coord = eval_config;
  no_coord.sim.coordination.enabled = false;
  const core::EncounterEvaluator uncoordinated(no_coord, acas, acas);
  evaluate_row("ACAS-XU, no coord", uncoordinated.evaluate(head_on, 1));

  const core::EncounterEvaluator one_sided(eval_config, acas, {});
  evaluate_row("own-ship only", one_sided.evaluate(head_on, 1));

  const core::EncounterEvaluator unequipped(eval_config, {}, {});
  evaluate_row("unequipped", unequipped.evaluate(head_on, 1));

  std::printf("\npaper expectation: equipped head-on NMAC well under 5/100 while the\n"
              "unequipped pair collides essentially always; coordination produces the\n"
              "complementary climb/descend pair shown in Fig. 5.\n");
  return 0;
}
