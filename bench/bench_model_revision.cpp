// E10 — closing the paper's Fig. 1 loop: Simulation Evaluation -> manual
// model revision.  The GA search (E3/E4) exposed the tau blind spot; this
// bench evaluates the *structural* model revision (the relative-velocity
// horizontal MDP, acasx/horizontal.h) that the finding calls for:
//
//   1. the discovered challenging family (slow-closure tail approaches)
//      before vs after the revision;
//   2. the canonical geometries, to show the revision does not regress
//      the previously-working cases;
//   3. a fresh GA search against the revised system — does the validation
//      framework still find challenging situations, and of what kind?
//      (The paper's §VIII: the search is a development tool, re-run after
//      every revision.)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "acasx/horizontal.h"
#include "bench_common.h"
#include "core/analysis.h"
#include "core/model_revision.h"
#include "core/scenario_search.h"
#include "encounter/encounter.h"
#include "mdp/compiled_mdp.h"
#include "mdp/value_iteration.h"
#include "sim/acasx_cas.h"
#include "sim/combined_cas.h"
#include "toy2d/toy2d_mdp.h"
#include "util/csv.h"
#include "util/expect.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The *parameter* half of the Fig. 1 revision loop: re-tune the SIII
/// punishment weights and re-solve.  Costs change, transitions don't — so
/// the refresh_costs path compiles the transition structure ONCE and each
/// revision pays only for Bellman sweeps, while the naive path re-flattens
/// the model every time.
void bench_cost_revision_loop() {
  using namespace cav;

  bench::banner("E10a: cost-only revision loop — refresh_costs vs re-flatten");
  toy2d::Config base;
  base.x_max = bench::smoke() ? 19 : 60;
  base.y_max = bench::smoke() ? 5 : 15;
  const std::size_t revisions = bench::smoke() ? 4 : 16;
  const auto revised_config = [&](std::size_t i) {
    toy2d::Config c = base;
    c.maneuver_cost = 25.0 * static_cast<double>(i + 1);
    c.level_reward = 50.0 - 2.0 * static_cast<double>(i);
    return c;
  };

  // Naive loop: flatten + solve per revision.
  std::size_t flatten_count = 0;
  mdp::Values last_naive;
  const auto t_naive = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < revisions; ++i) {
    const toy2d::Toy2dMdp model(revised_config(i));
    const mdp::CompiledMdp compiled(model);
    ++flatten_count;
    last_naive = mdp::solve_value_iteration(compiled).values;
  }
  const double naive_s = seconds_since(t_naive);

  // Revision loop: flatten once, refresh costs per revision.
  const auto t_compile = std::chrono::steady_clock::now();
  mdp::CompiledMdp compiled{toy2d::Toy2dMdp(base)};
  const double compile_s = seconds_since(t_compile);
  mdp::Values last_refreshed;
  const auto t_refresh = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < revisions; ++i) {
    compiled.refresh_costs(toy2d::Toy2dMdp(revised_config(i)));
    last_refreshed = mdp::solve_value_iteration(compiled).values;
  }
  const double refresh_s = seconds_since(t_refresh);

  ensure(last_naive == last_refreshed, "refreshed revisions bit-identical to re-flattened");
  std::printf("SIII model scaled to %zu states, %zu cost revisions\n",
              compiled.num_states(), revisions);
  std::printf("%-34s %8.2f ms total  (%5.2f ms/revision, %zu flattens)\n",
              "re-flatten every revision:", 1e3 * naive_s,
              1e3 * naive_s / static_cast<double>(revisions), flatten_count);
  std::printf("%-34s %8.2f ms total  (%5.2f ms/revision, 1 flatten: %.2f ms)\n",
              "compile once + refresh_costs:", 1e3 * refresh_s,
              1e3 * refresh_s / static_cast<double>(revisions), 1e3 * compile_s);
  std::printf("revision-loop speedup: %.2fx (results bit-identical)\n",
              naive_s / (refresh_s > 0.0 ? refresh_s : 1e-12));

  // The same loop driven through core::Toy2dRevisionLoop, closing Fig. 1:
  // revise weights -> re-solve (one compiled structure) -> simulate.
  bench::banner("E10b: weight sweep through the revision loop (solve + rollouts)");
  core::Toy2dRevisionLoop loop(toy2d::Config{}, bench::smoke() ? 20 : 200);
  std::printf("%-18s %-10s %-12s %-16s %-12s\n", "maneuver cost", "sweeps", "collisions",
              "mean maneuvers", "base cost");
  for (const double maneuver_cost : {0.0, 50.0, 100.0, 400.0, 1600.0}) {
    core::Toy2dCostRevision revision;
    revision.maneuver_cost = maneuver_cost;
    const auto report = loop.evaluate(revision, &bench::pool());
    std::printf("%-18.0f %-10zu %zu/%-10zu %-16.2f %-12.1f\n", maneuver_cost,
                report.solver_iterations, report.collisions, report.episodes,
                report.mean_maneuver_steps, report.mean_base_cost);
  }
  std::printf("(%zu revisions evaluated on one compiled transition structure)\n",
              loop.revisions_evaluated());
}

/// Same idea at ACAS scale: the successor stencils are the transition
/// structure; CompiledAcasModel builds them once and re-solves the tau
/// recursion per cost revision.
void bench_acas_cost_revision() {
  using namespace cav;

  bench::banner("E10c: ACAS X cost revisions on precompiled stencils");
  const acasx::AcasXuConfig config = bench::standard_or_smoke_config();
  const std::size_t revisions = bench::smoke() ? 2 : 4;
  const auto revised_costs = [&](std::size_t i) {
    acasx::CostModel costs = config.costs;
    costs.maneuver_cost = 100.0 + 50.0 * static_cast<double>(i);
    costs.reversal_cost = 300.0 + 100.0 * static_cast<double>(i);
    return costs;
  };

  double fresh_s = 0.0;
  double fresh_build_s = 0.0;
  std::vector<float> last_fresh;
  for (std::size_t i = 0; i < revisions; ++i) {
    acasx::AcasXuConfig revised = config;
    revised.costs = revised_costs(i);
    acasx::SolveStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    last_fresh = acasx::solve_logic_table(revised, &bench::pool(), &stats).raw();
    fresh_s += seconds_since(t0);
    fresh_build_s += stats.stencil_build_seconds;
  }

  const auto t_build = std::chrono::steady_clock::now();
  const acasx::CompiledAcasModel model(config, &bench::pool());
  const double build_s = seconds_since(t_build);
  double reused_s = 0.0;
  std::vector<float> last_reused;
  for (std::size_t i = 0; i < revisions; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    last_reused = model.solve(revised_costs(i), &bench::pool()).raw();
    reused_s += seconds_since(t0);
  }

  ensure(last_fresh == last_reused, "stencil-reuse revisions bit-identical to fresh solves");
  std::printf("%zu cost revisions on the %s grid\n", revisions,
              bench::smoke() ? "coarse (smoke)" : "standard");
  std::printf("%-34s %8.0f ms  (%.0f ms spent rebuilding stencils)\n",
              "fresh solve per revision:", 1e3 * fresh_s, 1e3 * fresh_build_s);
  std::printf("%-34s %8.0f ms  (stencils built once: %.0f ms)\n",
              "CompiledAcasModel::solve:", 1e3 * reused_s, 1e3 * build_s);
  std::printf("revision-loop speedup: %.2fx (tables bit-identical)\n",
              fresh_s / (reused_s > 0.0 ? reused_s : 1e-12));
}

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  double scale = bench::smoke() ? 0.1 : 1.0;
  if (const char* env = std::getenv("CAV_E10_SCALE")) scale = std::atof(env);

  bench_cost_revision_loop();
  bench_acas_cost_revision();

  bench::banner("E10: model revision after the GA findings (Fig. 1 loop)");
  const auto vertical = bench::standard_table();

  acasx::HorizontalSolveStats hstats;
  const auto horizontal = std::make_shared<const acasx::HorizontalTable>(
      acasx::solve_horizontal_table(acasx::HorizontalConfig{}, &bench::pool(), &hstats));
  std::printf("horizontal MDP: %zu states over (dx, dy, rvx, rvy), solved in %.2f s "
              "(%zu iterations)\n",
              hstats.states, hstats.wall_seconds, hstats.iterations);

  const auto vertical_only = sim::AcasXuCas::factory(vertical);
  const auto combined = sim::CombinedCas::factory(vertical, horizontal);

  core::FitnessConfig config;
  config.runs_per_encounter = bench::smoke() ? 5 : 100;
  const core::EncounterEvaluator before(config, vertical_only, vertical_only);
  const core::EncounterEvaluator after(config, combined, combined);

  bench::banner("before/after on the discovered challenging family (100 runs each)");
  std::printf("%-26s %-22s %-22s\n", "encounter", "vertical-only NMAC", "with revision NMAC");
  const std::string csv_path = bench::output_dir() + "/model_revision.csv";
  CsvWriter csv(csv_path);
  csv.header({"encounter", "nmac_before", "nmac_after", "alert_before", "alert_after"});

  const auto row = [&](const char* name, const encounter::EncounterParams& params,
                       std::uint64_t stream) {
    const auto b = before.evaluate(params, stream);
    const auto a = after.evaluate(params, stream);
    std::printf("%-26s %3zu/100 (%3.0f%% alert)   %3zu/100 (%3.0f%% alert)\n", name, b.nmac_count,
                100.0 * b.alert_fraction_own, a.nmac_count, 100.0 * a.alert_fraction_own);
    csv.cell(name).cell(b.nmac_rate()).cell(a.nmac_rate()).cell(b.alert_fraction_own)
        .cell(a.alert_fraction_own);
    csv.end_row();
  };

  row("tail approach (Figs.7-8)", encounter::tail_approach(), 1);
  for (const double closure : {2.0, 6.0, 10.0, 20.0}) {
    encounter::EncounterParams params = encounter::tail_approach();
    params.gs_int_mps = params.gs_own_mps + closure;
    char name[48];
    std::snprintf(name, sizeof name, "tail family, %.0f m/s", closure);
    row(name, params, 10 + static_cast<std::uint64_t>(closure));
  }
  row("head-on (Fig.5)", encounter::head_on(), 2);
  row("crossing", encounter::crossing(), 3);
  row("descending intruder", encounter::descending_intruder(), 4);
  std::printf("CSV: %s\n", csv_path.c_str());

  bench::banner("re-running the GA search against the revised system");
  core::ScenarioSearchConfig search;
  search.ga.population_size = std::max<std::size_t>(10, static_cast<std::size_t>(100 * scale));
  search.ga.generations = 5;
  search.ga.seed = 2016;
  search.fitness.runs_per_encounter =
      std::max<std::size_t>(10, static_cast<std::size_t>(50 * scale));

  const auto before_search =
      core::search_challenging_scenarios(search, vertical_only, vertical_only, &bench::pool());
  const auto after_search =
      core::search_challenging_scenarios(search, combined, combined, &bench::pool());

  std::printf("%-22s %-16s %-16s\n", "", "vertical-only", "with revision");
  std::printf("%-22s %-16.1f %-16.1f\n", "best fitness found", before_search.best_fitness(),
              after_search.best_fitness());
  std::printf("%-22s %-16.1f %-16.1f\n", "last-gen mean fitness",
              before_search.ga.generations.back().mean_fitness,
              after_search.ga.generations.back().mean_fitness);

  std::printf("\nhardest encounters the search still finds against the revised system:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, after_search.top.size()); ++i) {
    const auto& f = after_search.top[i];
    std::printf("  fitness %7.1f  NMAC %zu/%zu  %s\n", f.fitness, f.detail.nmac_count,
                f.detail.runs, core::describe(f.params).c_str());
  }

  std::printf("\nreading: the revision removes the discovered blind-spot family without\n"
              "regressing the canonical cases; the re-run search quantifies how much\n"
              "harder the adversary's job has become — and what to look at next,\n"
              "which is exactly the iterative development the paper advocates.\n");
  return 0;
}
