// E10 — closing the paper's Fig. 1 loop: Simulation Evaluation -> manual
// model revision.  The GA search (E3/E4) exposed the tau blind spot; this
// bench evaluates the *structural* model revision (the relative-velocity
// horizontal MDP, acasx/horizontal.h) that the finding calls for:
//
//   1. the discovered challenging family (slow-closure tail approaches)
//      before vs after the revision;
//   2. the canonical geometries, to show the revision does not regress
//      the previously-working cases;
//   3. a fresh GA search against the revised system — does the validation
//      framework still find challenging situations, and of what kind?
//      (The paper's §VIII: the search is a development tool, re-run after
//      every revision.)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "acasx/horizontal.h"
#include "bench_common.h"
#include "core/analysis.h"
#include "core/scenario_search.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/combined_cas.h"
#include "util/csv.h"

int main() {
  using namespace cav;

  double scale = bench::smoke() ? 0.1 : 1.0;
  if (const char* env = std::getenv("CAV_E10_SCALE")) scale = std::atof(env);

  bench::banner("E10: model revision after the GA findings (Fig. 1 loop)");
  const auto vertical = bench::standard_table();

  acasx::HorizontalSolveStats hstats;
  const auto horizontal = std::make_shared<const acasx::HorizontalTable>(
      acasx::solve_horizontal_table(acasx::HorizontalConfig{}, &bench::pool(), &hstats));
  std::printf("horizontal MDP: %zu states over (dx, dy, rvx, rvy), solved in %.2f s "
              "(%zu iterations)\n",
              hstats.states, hstats.wall_seconds, hstats.iterations);

  const auto vertical_only = sim::AcasXuCas::factory(vertical);
  const auto combined = sim::CombinedCas::factory(vertical, horizontal);

  core::FitnessConfig config;
  config.runs_per_encounter = bench::smoke() ? 5 : 100;
  const core::EncounterEvaluator before(config, vertical_only, vertical_only);
  const core::EncounterEvaluator after(config, combined, combined);

  bench::banner("before/after on the discovered challenging family (100 runs each)");
  std::printf("%-26s %-22s %-22s\n", "encounter", "vertical-only NMAC", "with revision NMAC");
  const std::string csv_path = bench::output_dir() + "/model_revision.csv";
  CsvWriter csv(csv_path);
  csv.header({"encounter", "nmac_before", "nmac_after", "alert_before", "alert_after"});

  const auto row = [&](const char* name, const encounter::EncounterParams& params,
                       std::uint64_t stream) {
    const auto b = before.evaluate(params, stream);
    const auto a = after.evaluate(params, stream);
    std::printf("%-26s %3zu/100 (%3.0f%% alert)   %3zu/100 (%3.0f%% alert)\n", name, b.nmac_count,
                100.0 * b.alert_fraction_own, a.nmac_count, 100.0 * a.alert_fraction_own);
    csv.cell(name).cell(b.nmac_rate()).cell(a.nmac_rate()).cell(b.alert_fraction_own)
        .cell(a.alert_fraction_own);
    csv.end_row();
  };

  row("tail approach (Figs.7-8)", encounter::tail_approach(), 1);
  for (const double closure : {2.0, 6.0, 10.0, 20.0}) {
    encounter::EncounterParams params = encounter::tail_approach();
    params.gs_int_mps = params.gs_own_mps + closure;
    char name[48];
    std::snprintf(name, sizeof name, "tail family, %.0f m/s", closure);
    row(name, params, 10 + static_cast<std::uint64_t>(closure));
  }
  row("head-on (Fig.5)", encounter::head_on(), 2);
  row("crossing", encounter::crossing(), 3);
  row("descending intruder", encounter::descending_intruder(), 4);
  std::printf("CSV: %s\n", csv_path.c_str());

  bench::banner("re-running the GA search against the revised system");
  core::ScenarioSearchConfig search;
  search.ga.population_size = std::max<std::size_t>(10, static_cast<std::size_t>(100 * scale));
  search.ga.generations = 5;
  search.ga.seed = 2016;
  search.fitness.runs_per_encounter =
      std::max<std::size_t>(10, static_cast<std::size_t>(50 * scale));

  const auto before_search =
      core::search_challenging_scenarios(search, vertical_only, vertical_only, &bench::pool());
  const auto after_search =
      core::search_challenging_scenarios(search, combined, combined, &bench::pool());

  std::printf("%-22s %-16s %-16s\n", "", "vertical-only", "with revision");
  std::printf("%-22s %-16.1f %-16.1f\n", "best fitness found", before_search.best_fitness(),
              after_search.best_fitness());
  std::printf("%-22s %-16.1f %-16.1f\n", "last-gen mean fitness",
              before_search.ga.generations.back().mean_fitness,
              after_search.ga.generations.back().mean_fitness);

  std::printf("\nhardest encounters the search still finds against the revised system:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, after_search.top.size()); ++i) {
    const auto& f = after_search.top[i];
    std::printf("  fitness %7.1f  NMAC %zu/%zu  %s\n", f.fitness, f.detail.nmac_count,
                f.detail.runs, core::describe(f.params).c_str());
  }

  std::printf("\nreading: the revision removes the discovered blind-spot family without\n"
              "regressing the canonical cases; the re-run search quantifies how much\n"
              "harder the adversary's job has become — and what to look at next,\n"
              "which is exactly the iterative development the paper advocates.\n");
  return 0;
}
