// E18 — Parallel logical-process airspace: city_corridors fleets run
// through the same restructured engine serial and at 1/2/4 logical
// processes on a worker pool (sim::LpConfig).  Every LP/thread
// configuration must produce BIT-identical results — trajectories enter
// the same monitors, the pair minima, NMAC verdicts, and event-core
// accounting must match the serial run exactly.  Determinism is the hard
// gate (non-zero exit on any mismatch); speedup is printed as an
// expectation only — the 1-core CI box can't honor it and must not fail
// (same policy as E17).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "acasx/offline_solver.h"
#include "bench_common.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The bit-identity contract, on every surface a SimResult exposes: the
/// assembled proximity/NMAC verdicts, the per-pair minima in the sorted
/// monitor view, and the event-core accounting (a diverged substep or
/// pair count means the engines did different work even if the minima
/// happened to agree).
bool identical(const cav::sim::SimResult& a, const cav::sim::SimResult& b) {
  if (a.proximity.min_distance_m != b.proximity.min_distance_m ||
      a.proximity.min_horizontal_m != b.proximity.min_horizontal_m ||
      a.proximity.min_vertical_m != b.proximity.min_vertical_m ||
      a.proximity.time_of_min_distance_s != b.proximity.time_of_min_distance_s) {
    return false;
  }
  if (a.nmac != b.nmac || a.nmac_time_s != b.nmac_time_s) return false;
  if (a.stats.fine_agent_steps != b.stats.fine_agent_steps ||
      a.stats.coarse_agent_steps != b.stats.coarse_agent_steps ||
      a.stats.pair_updates != b.stats.pair_updates ||
      a.stats.monitored_pairs != b.stats.monitored_pairs ||
      a.stats.peak_active_pairs != b.stats.peak_active_pairs ||
      a.stats.decision_cycles != b.stats.decision_cycles ||
      a.stats.fault_events != b.stats.fault_events) {
    return false;
  }
  if (a.pairs.size() != b.pairs.size()) return false;
  for (std::size_t p = 0; p < a.pairs.size(); ++p) {
    if (a.pairs[p].a != b.pairs[p].a || a.pairs[p].b != b.pairs[p].b ||
        a.pairs[p].proximity.min_distance_m != b.pairs[p].proximity.min_distance_m ||
        a.pairs[p].proximity.time_of_min_distance_s !=
            b.pairs[p].proximity.time_of_min_distance_s) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);

  bench::banner("E18: parallel-LP airspace (city corridors, 1/2/4 LPs)");

  // LP scaling is table-resolution independent, so the coarse space keeps
  // the offline solve out of the measurement in every mode.
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse()));
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);

  const std::vector<std::size_t> fleets =
      bench::smoke() ? std::vector<std::size_t>{256}
                     : std::vector<std::size_t>{256, 1024, 4096};
  const double horizon_s = bench::smoke() ? 24.0 : 120.0;

  std::printf("workload: city_corridors fleets, fully ACAS-Xu equipped, %.0f s\n"
              "horizon, interaction radius 2000 m (== lane spacing); each LP\n"
              "width runs on the shared worker pool and is checked bit-for-bit\n"
              "against the serial engine\n\n",
              horizon_s);
  std::printf("%-8s %-6s %-12s %-10s %-14s %-s\n", "fleet", "LPs", "wall [s]", "NMAC",
              "active pairs", "bit-identical");

  bool determinism_ok = true;
  for (const std::size_t k : fleets) {
    const scenarios::Scenario city = scenarios::city_corridors(k, 2016);
    const std::vector<sim::UavState> states = city.initial_states();

    auto run_with_lps = [&](int num_lps, ThreadPool* pool) {
      std::vector<sim::AgentSetup> agents(states.size());
      for (std::size_t i = 0; i < states.size(); ++i) {
        agents[i].initial_state = states[i];
        agents[i].cas = equipped();
      }
      sim::SimConfig config;
      config.airspace.interaction_radius_m = 2000.0;
      config.airspace.parallel.num_lps = num_lps;
      config.airspace.parallel.pool = pool;
      config.max_time_s = horizon_s;
      return sim::run_multi_encounter(config, std::move(agents), 13);
    };

    const auto serial_t0 = std::chrono::steady_clock::now();
    const sim::SimResult reference = run_with_lps(1, nullptr);
    const double serial_s = seconds_since(serial_t0);
    std::printf("%-8zu %-6s %-12.3f %-10s %-14zu %s\n", k, "serial", serial_s,
                reference.nmac ? "yes" : "no", reference.stats.peak_active_pairs, "(reference)");
    const std::string key = "e18.k" + std::to_string(k) + ".";
    bench::record_metric(key + "serial.wall_s", serial_s);

    std::vector<double> walls;
    for (const int num_lps : {1, 2, 4}) {
      const auto t0 = std::chrono::steady_clock::now();
      const sim::SimResult result = run_with_lps(num_lps, &bench::pool());
      const double wall_s = seconds_since(t0);
      walls.push_back(wall_s);

      const bool match = identical(result, reference);
      determinism_ok = determinism_ok && match;
      std::printf("%-8zu %-6d %-12.3f %-10s %-14zu %s\n", k, num_lps, wall_s,
                  result.nmac ? "yes" : "no", result.stats.peak_active_pairs,
                  match ? "yes" : "NO  <-- FAILURE");
      bench::record_metric(key + "lp" + std::to_string(num_lps) + ".wall_s", wall_s);
    }
    bench::record_metric(key + "speedup_2lp", walls[0] / walls[1]);
    bench::record_metric(key + "speedup_4lp", walls[0] / walls[2]);
    std::printf("\n");
  }

  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    std::printf("single-core host (%u): LP speedup is not gated here — the\n"
                "decision/coordination phase is serial by contract, everything\n"
                "else stripes across the pool\n",
                cores);
  } else if (bench::smoke()) {
    std::printf("smoke mode: workloads are shrunken, timings meaningless — not gated\n");
  }

  if (!determinism_ok) {
    std::printf("\nFAIL: an LP configuration perturbed the results — the bit-identity "
                "contract is broken\n");
    return 1;
  }
  std::printf("\nall LP widths bit-identical to serial — determinism gate passed\n");
  return 0;
}
