// E11 — Multi-intruder engine throughput: encounters/sec of the N-aircraft
// simulation as the intruder count K grows, serial vs thread pool.  The
// workload is the Monte-Carlo validation loop itself (a ValidationCampaign with
// K intruders per encounter, ACAS XU-equipped own-ship and intruders), so
// the numbers bound real validation throughput, not a synthetic kernel.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/monte_carlo.h"
#include "core/validation_campaign.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  std::size_t encounters = bench::smoke() ? 24 : 400;
  if (const char* env = std::getenv("CAV_E11_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }

  bench::banner("E11: multi-intruder encounter engine throughput");
  const auto table = bench::standard_table();
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);

  const encounter::StatisticalEncounterModel model;
  std::printf("workload: %zu encounters/config, equipped own-ship and intruders,\n"
              "K intruders sampled per encounter (deterministic per-intruder streams)\n\n",
              encounters);

  std::printf("%-4s %-12s %-12s %-14s %-14s %-10s %-10s\n", "K", "serial [s]", "pooled [s]",
              "enc/s serial", "enc/s pooled", "speedup", "NMAC rate");
  const std::string csv_path = bench::output_dir() + "/multi_intruder_throughput.csv";
  CsvWriter csv(csv_path);
  csv.header({"intruders", "encounters", "serial_s", "pooled_s", "enc_per_s_serial",
              "enc_per_s_pooled", "speedup", "nmac_rate"});

  for (const std::size_t k : {1UL, 3UL, 7UL}) {
    core::MonteCarloConfig config;
    config.encounters = encounters;
    config.intruders = k;
    config.seed = 777;

    const auto t0 = std::chrono::steady_clock::now();
    const core::ValidationCampaign campaign(model, config, "multi-intruder", equipped,
                                            equipped);
    const auto serial = campaign.run().rates;
    const auto t1 = std::chrono::steady_clock::now();
    const auto pooled = campaign.run(&bench::pool()).rates;
    const auto t2 = std::chrono::steady_clock::now();

    const double serial_s = std::chrono::duration<double>(t1 - t0).count();
    const double pooled_s = std::chrono::duration<double>(t2 - t1).count();
    const double eps_serial = static_cast<double>(encounters) / serial_s;
    const double eps_pooled = static_cast<double>(encounters) / pooled_s;

    if (serial.nmacs != pooled.nmacs || serial.alerts != pooled.alerts) {
      std::printf("MISMATCH: serial and pooled runs disagree at K=%zu\n", k);
      return 1;
    }

    std::printf("%-4zu %-12.3f %-12.3f %-14.1f %-14.1f %-10.2f %-10.4f\n", k, serial_s,
                pooled_s, eps_serial, eps_pooled, serial_s / pooled_s, serial.nmac_rate());
    csv.cell(k).cell(encounters).cell(serial_s).cell(pooled_s).cell(eps_serial)
        .cell(eps_pooled).cell(serial_s / pooled_s).cell(serial.nmac_rate());
    csv.end_row();
    const std::string prefix = "e11.k" + std::to_string(k) + ".";
    bench::record_metric(prefix + "serial_s", serial_s);
    bench::record_metric(prefix + "pooled_s", pooled_s);
    bench::record_metric(prefix + "nmac_rate", serial.nmac_rate());
  }
  std::printf("\nCSV: %s\n", csv_path.c_str());

  // Scenario-library smoke: every named family must build and run on the
  // N-aircraft engine (the curated workload axis benches build on).
  std::printf("\nscenario library (equipped own-ship, unequipped intruders):\n");
  std::printf("%-16s %-4s %-12s %-8s %-8s\n", "scenario", "K", "own minsep", "ownNMAC",
              "alerted");
  for (const std::string& name : scenarios::scenario_names()) {
    // The scenario-library smoke stays small: city-corridors' default is a
    // 256-aircraft fleet (bench_airspace_scale's workload), far beyond the
    // budget here — run it at a token fleet with its city-sized radius.
    const bool city = (name == "city-corridors");
    const scenarios::Scenario scenario = scenarios::make_scenario(name, city ? 16 : 0);
    sim::SimConfig sim_config;
    if (city) sim_config.airspace.interaction_radius_m = 2000.0;
    const auto result = scenarios::run_scenario(scenario, sim_config, equipped, {}, 99);
    std::printf("%-16s %-4zu %-12.1f %-8s %-8s\n", scenario.name.c_str(),
                scenario.num_aircraft() - 1, result.own_min_separation_m(),
                result.own_nmac() ? "yes" : "no", result.own.ever_alerted ? "yes" : "no");
  }
  return 0;
}
