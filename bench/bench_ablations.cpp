// E9 — ablations of the design choices DESIGN.md calls out.  Each section
// isolates one knob the paper's development process worries about (§IV:
// discretization/interpolation accuracy, model parameters, preferences)
// or a mechanism of the simulation (§VI: coordination, sensor noise,
// disturbance) and reports its effect on the two canonical geometries.
#include <cstdio>
#include <memory>

#include "acasx/belief_logic.h"
#include "bench_common.h"
#include "core/fitness.h"
#include "core/logbook.h"
#include "core/scenario_search.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/belief_cas.h"
#include "util/csv.h"

namespace {

using namespace cav;

core::EncounterEvaluation evaluate_with(const core::FitnessConfig& config,
                                        std::shared_ptr<const acasx::LogicTable> table,
                                        const encounter::EncounterParams& params) {
  const auto factory = sim::AcasXuCas::factory(std::move(table));
  const core::EncounterEvaluator evaluator(config, factory, factory);
  return evaluator.evaluate(params, 1);
}

core::FitnessConfig base_config() {
  core::FitnessConfig config;
  config.runs_per_encounter = bench::smoke() ? 5 : 100;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  bench::banner("E9: ablations (discretization, costs, coordination, noise)");
  const auto standard = bench::standard_table();
  const std::string csv_path = bench::output_dir() + "/ablations.csv";
  CsvWriter csv(csv_path);
  csv.header({"section", "setting", "headon_nmac", "headon_alerted", "tail_nmac", "tail_alerted"});

  const auto row = [&](const char* section, const char* setting,
                       const core::EncounterEvaluation& head,
                       const core::EncounterEvaluation& tail) {
    std::printf("%-26s head-on: %3zu/100 NMAC %3.0f%% alerted | tail: %3zu/100 NMAC %3.0f%% alerted\n",
                setting, head.nmac_count, 100.0 * head.alert_fraction_own, tail.nmac_count,
                100.0 * tail.alert_fraction_own);
    csv.cell(section).cell(setting).cell(head.nmac_rate()).cell(head.alert_fraction_own)
        .cell(tail.nmac_rate()).cell(tail.alert_fraction_own);
    csv.end_row();
  };

  // ---------------------------------------------------------------- (a)
  bench::banner("(a) state-space discretization (SIV: interpolation inaccuracy)");
  {
    std::vector<std::pair<const char*, acasx::StateSpaceConfig>> spaces{
        {"coarse grid", acasx::StateSpaceConfig::coarse()}};
    if (!bench::smoke()) {
      spaces.emplace_back("standard grid", acasx::StateSpaceConfig::standard());
      spaces.emplace_back("fine grid", acasx::StateSpaceConfig::fine());
    }
    for (const auto& [name, space] : spaces) {
      acasx::AcasXuConfig config;
      config.space = space;
      const auto table = std::make_shared<const acasx::LogicTable>(
          acasx::solve_logic_table(config, &bench::pool()));
      row("discretization", name, evaluate_with(base_config(), table, encounter::head_on()),
          evaluate_with(base_config(), table, encounter::tail_approach()));
    }
  }

  // ---------------------------------------------------------------- (b)
  bench::banner("(b) preference model: maneuver cost (paper SIII: 100 per step)");
  {
    for (const double maneuver_cost : {10.0, 100.0, 400.0}) {
      acasx::AcasXuConfig config;
      config.costs.maneuver_cost = maneuver_cost;
      config.costs.strengthened_maneuver_cost = 1.5 * maneuver_cost;
      const auto table = std::make_shared<const acasx::LogicTable>(
          acasx::solve_logic_table(config, &bench::pool()));
      char label[64];
      std::snprintf(label, sizeof label, "maneuver cost %.0f", maneuver_cost);
      row("maneuver_cost", label, evaluate_with(base_config(), table, encounter::head_on()),
          evaluate_with(base_config(), table, encounter::tail_approach()));
    }
    std::printf("(cheap maneuvers -> alert early and often; expensive -> late, minimal\n"
                " alerting with thinner margins — the preference-tuning dial of Fig. 1)\n");
  }

  // ---------------------------------------------------------------- (c)
  bench::banner("(c) coordination x vertical surveillance quality (SVI.C)");
  {
    // With nominal ADS-B accuracy the two aircraft's views of the relative
    // geometry are anti-symmetric by alert time (gust drift exceeds sensor
    // noise), so they pick complementary senses even WITHOUT coordination.
    // Coordination starts to matter when vertical position noise swamps
    // the true offset and same-sense picks become possible.
    for (const double pos_sigma : {7.5, 30.0, 60.0}) {
      for (const bool coordination : {true, false}) {
        core::FitnessConfig config = base_config();
        config.sim.adsb.vertical_pos_sigma_m = pos_sigma;
        config.sim.coordination.enabled = coordination;
        char label[64];
        std::snprintf(label, sizeof label, "vpos sigma %4.1fm coord %s", pos_sigma,
                      coordination ? "on" : "off");
        row("coordination", label, evaluate_with(config, standard, encounter::head_on()),
            evaluate_with(config, standard, encounter::tail_approach()));
      }
    }
  }

  // ---------------------------------------------------------------- (d)
  bench::banner("(d) ADS-B velocity noise (SVI.C sensor model)");
  {
    for (const double sigma : {0.0, 1.0, 3.0}) {
      core::FitnessConfig config = base_config();
      config.sim.adsb.horizontal_vel_sigma_mps = sigma;
      config.sim.adsb.vertical_vel_sigma_mps = sigma / 2.0;
      char label[64];
      std::snprintf(label, sizeof label, "vel sigma %.1f m/s", sigma);
      row("adsb_noise", label, evaluate_with(config, standard, encounter::head_on()),
          evaluate_with(config, standard, encounter::tail_approach()));
    }
  }

  // ---------------------------------------------------------------- (e)
  bench::banner("(e) environment disturbance intensity (SVI.C)");
  {
    for (const double sigma : {0.1, 0.5, 1.0}) {
      core::FitnessConfig config = base_config();
      config.sim.disturbance.vertical_sigma = sigma;
      char label[64];
      std::snprintf(label, sizeof label, "gust sigma %.1f", sigma);
      row("disturbance", label, evaluate_with(config, standard, encounter::head_on()),
          evaluate_with(config, standard, encounter::tail_approach()));
    }
    std::printf("(more gusting lets a few tail encounters escape by luck and stresses\n"
                " head-on resolution margins — the stochastic factor of the MDP model)\n");
  }

  // ---------------------------------------------------------------- (f)
  bench::banner("(f) coordination message loss under degraded surveillance");
  {
    // Failure injection at the operating point where coordination matters
    // (see section (c)): large vertical position noise.
    for (const double loss : {0.0, 0.5, 1.0}) {
      core::FitnessConfig config = base_config();
      config.sim.adsb.vertical_pos_sigma_m = 60.0;
      config.sim.coordination.message_loss_prob = loss;
      char label[64];
      std::snprintf(label, sizeof label, "msg loss %.0f%% (vpos 60m)", 100.0 * loss);
      row("coord_loss", label, evaluate_with(config, standard, encounter::head_on()),
          evaluate_with(config, standard, encounter::tail_approach()));
    }
  }

  // ---------------------------------------------------------------- (g)
  bench::banner("(g) point-estimate vs belief-aware online logic (SIV: 'should a POMDP be used?')");
  {
    // QMDP-style belief averaging over the measurement uncertainty,
    // swept against the actual vertical-position noise level.
    for (const double vpos_sigma : {7.5, 30.0, 50.0}) {
      core::FitnessConfig config = base_config();
      config.sim.adsb.vertical_pos_sigma_m = vpos_sigma;
      {
        char label[64];
        std::snprintf(label, sizeof label, "point est. (vpos %.0fm)", vpos_sigma);
        row("belief", label, evaluate_with(config, standard, encounter::head_on()),
            evaluate_with(config, standard, encounter::tail_approach()));
      }
      for (const double h_sigma : {80.0, 164.0}) {
        acasx::BeliefConfig belief;
        belief.h_sigma_ft = h_sigma;
        const auto factory = sim::BeliefAcasXuCas::factory(standard, belief);
        const core::EncounterEvaluator evaluator(config, factory, factory);
        char label[64];
        std::snprintf(label, sizeof label, "belief %3.0fft (vpos %.0fm)", h_sigma, vpos_sigma);
        const auto head = evaluator.evaluate(encounter::head_on(), 1);
        const auto tail = evaluator.evaluate(encounter::tail_approach(), 1);
        row("belief", label, head, tail);
      }
    }
    std::printf("(a belief sigma in the order of the sensor noise buys margin at equal\n"
                " safety; oversizing it washes out the alert gradient — naive QMDP\n"
                " averaging is NOT a free upgrade, which is itself a validation finding)\n");
  }

  // ---------------------------------------------------------------- (h)
  bench::banner("(h) GA niching: point-finding vs area-coverage (SVIII)");
  {
    // Fitness sharing spreads the population across distinct challenging
    // regions instead of collapsing onto the single worst encounter.
    core::ScenarioSearchConfig search;
    search.ga.population_size = bench::smoke() ? 12 : 60;
    search.ga.generations = bench::smoke() ? 2 : 5;
    search.ga.seed = 77;
    search.fitness.runs_per_encounter = bench::smoke() ? 4 : 20;
    search.keep_top = 10;
    const auto acas_factory = sim::AcasXuCas::factory(standard);

    std::printf("%-14s %-12s %-18s %-18s\n", "variant", "best", "top >= 5000", "regions found");
    for (const bool niched : {false, true}) {
      search.ga.niching.enabled = niched;
      search.ga.niching.share_radius = 0.15;
      const auto result = core::search_challenging_scenarios(search, acas_factory, acas_factory,
                                                             &bench::pool());
      std::size_t hot = 0;
      for (const auto& f : result.top) {
        if (f.fitness >= 5000.0) ++hot;
      }
      const auto regions = core::find_regions(result.logbook, 5000.0, 3, search.ranges);
      std::printf("%-14s %-12.1f %-18zu %-18zu\n", niched ? "niched" : "plain",
                  result.best_fitness(), hot, regions.size());
    }
    std::printf("(niching trades a little peak pressure for coverage of distinct\n"
                " challenging areas — the SVIII 'areas, not points' direction)\n");
  }

  std::printf("\nCSV: %s\n", csv_path.c_str());
  return 0;
}
