// E6 — offline solver cost (paper §III footnote 2: "For the real ACAS XU
// model, Value Iteration takes several minutes (less than 5 minutes) on an
// ordinary laptop PC").  Google-benchmark timings for the backward-
// induction solve across discretizations, serial and parallel, plus the
// toy-model value iteration.
//
// The compiled-kernel trajectory: Virtual (seed: transitions re-expanded
// through virtual dispatch every sweep) -> Compiled (flat CSR arrays) ->
// CompiledParallel (chunked Jacobi sweeps on the thread pool); and for the
// ACAS table, Reference (scatter stencils recomputed every tau layer) ->
// Stencil (precompiled stencils) -> StencilParallel.  All variants emit
// identical logic, so the deltas are pure solver cost.
#include <benchmark/benchmark.h>

#include "acasx/offline_solver.h"
#include "bench_common.h"
#include "mdp/compiled_mdp.h"
#include "mdp/sparse_goal_chain.h"
#include "mdp/value_iteration.h"
#include "toy2d/toy2d_mdp.h"
#include "util/thread_pool.h"

namespace {

using namespace cav;

// ---------------------------------------------------------------- toy 2-D

void BM_SolveToy2dVirtual(benchmark::State& state) {
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  mdp::ValueIterationConfig config;
  config.use_compiled = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdp::solve_value_iteration(model, config));
  }
  state.SetLabel("490-state SIII model, seed path: virtual dispatch per backup");
}
BENCHMARK(BM_SolveToy2dVirtual)->Unit(benchmark::kMillisecond);

void BM_SolveToy2dCompiled(benchmark::State& state) {
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(toy2d::solve(model));
  }
  state.SetLabel("490-state SIII model, compiled CSR kernel (includes compile)");
}
BENCHMARK(BM_SolveToy2dCompiled)->Unit(benchmark::kMillisecond);

void BM_SolveToy2dCompiledSweepsOnly(benchmark::State& state) {
  // Compilation amortized outside the loop: the cost of sweeps alone, the
  // regime of model-revision loops that re-solve a structurally fixed MDP.
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  const mdp::CompiledMdp compiled(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdp::solve_value_iteration(compiled));
  }
  state.SetLabel("490-state SIII model, pre-compiled, sweeps only");
}
BENCHMARK(BM_SolveToy2dCompiledSweepsOnly)->Unit(benchmark::kMillisecond);

void BM_SolveToy2dPrioritized(benchmark::State& state) {
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  const mdp::CompiledMdp compiled(model);
  std::size_t state_updates = 0;
  for (auto _ : state) {
    const auto result = mdp::solve_prioritized(compiled);
    state_updates = result.state_updates;
    benchmark::DoNotOptimize(&result);
  }
  state.counters["state_updates"] = static_cast<double>(state_updates);
  state.SetLabel("490-state SIII model, prioritized sweeping (pre-compiled)");
}
BENCHMARK(BM_SolveToy2dPrioritized)->Unit(benchmark::kMillisecond);

void BM_SolveToy2dF32SweepsOnly(benchmark::State& state) {
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  const mdp::CompiledMdp compiled(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdp::solve_value_iteration_f32(compiled));
  }
  state.SetLabel("490-state SIII model, float32 value layers, sweeps only");
}
BENCHMARK(BM_SolveToy2dF32SweepsOnly)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ sparse-goal comparison
//
// Prioritized sweeping targets models whose cost mass sits in a small
// region of a large state space (the collision-punishment shape); on such
// models residual ordering skips the converged bulk that full Jacobi
// sweeps keep re-visiting.  (On dense-cost models like toy2d, where every
// state earns the level-off reward, full sweeps win — the BM_SolveToy2d*
// rows above show that side of the tradeoff.)  Both variants report
// state_updates; the Jacobi count is iterations x states.

void BM_SolveSparseGoalJacobi(benchmark::State& state) {
  const mdp::SparseGoalChain model(100000, 16);
  const mdp::CompiledMdp compiled(model);
  std::size_t non_terminal = 0;
  for (std::size_t s = 0; s < compiled.num_states(); ++s) {
    if (!compiled.is_terminal(static_cast<mdp::State>(s))) ++non_terminal;
  }
  std::size_t state_updates = 0;
  for (auto _ : state) {
    const auto result = mdp::solve_value_iteration(compiled);
    state_updates = result.iterations * non_terminal;  // same metric as prioritized
    benchmark::DoNotOptimize(&result);
  }
  state.counters["state_updates"] = static_cast<double>(state_updates);
  state.SetLabel("100k-state sparse-goal chain, full Jacobi sweeps");
}
BENCHMARK(BM_SolveSparseGoalJacobi)->Unit(benchmark::kMillisecond);

void BM_SolveSparseGoalPrioritized(benchmark::State& state) {
  const mdp::SparseGoalChain model(100000, 16);
  const mdp::CompiledMdp compiled(model);
  std::size_t state_updates = 0;
  for (auto _ : state) {
    const auto result = mdp::solve_prioritized(compiled);
    state_updates = result.state_updates;
    benchmark::DoNotOptimize(&result);
  }
  state.counters["state_updates"] = static_cast<double>(state_updates);
  state.SetLabel("100k-state sparse-goal chain, prioritized sweeping");
}
BENCHMARK(BM_SolveSparseGoalPrioritized)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ ACAS table

void BM_SolveCoarseTable(benchmark::State& state) {
  const acasx::AcasXuConfig config = acasx::AcasXuConfig::coarse();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config));
  }
  state.SetLabel("coarse grid, precompiled stencils, serial");
}
BENCHMARK(BM_SolveCoarseTable)->Unit(benchmark::kMillisecond);

void BM_SolveCoarseTableReference(benchmark::State& state) {
  const acasx::AcasXuConfig config = acasx::AcasXuConfig::coarse();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, nullptr, nullptr,
                                                      acasx::SolverMode::kReference));
  }
  state.SetLabel("coarse grid, seed path: scatter recomputed every layer");
}
BENCHMARK(BM_SolveCoarseTableReference)->Unit(benchmark::kMillisecond);

void BM_SolveStandardTableReferenceSerial(benchmark::State& state) {
  const acasx::AcasXuConfig config = bench::standard_or_smoke_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, nullptr, nullptr,
                                                      acasx::SolverMode::kReference));
  }
  state.SetLabel("standard grid (1.9M Q rows x 41 tau layers), seed serial == the paper's laptop setting");
}
BENCHMARK(BM_SolveStandardTableReferenceSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SolveStandardTableSerial(benchmark::State& state) {
  const acasx::AcasXuConfig config = bench::standard_or_smoke_config();
  acasx::SolveStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, nullptr, &stats));
  }
  state.counters["stencil_entries"] = static_cast<double>(stats.stencil_entries);
  state.counters["stencil_build_s"] = stats.stencil_build_seconds;
  state.SetLabel("standard grid, precompiled stencils, serial");
}
BENCHMARK(BM_SolveStandardTableSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SolveStandardTableParallel(benchmark::State& state) {
  const acasx::AcasXuConfig config = bench::standard_or_smoke_config();
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, &pool));
  }
  state.SetLabel("standard grid, precompiled stencils + thread pool");
}
BENCHMARK(BM_SolveStandardTableParallel)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SolveFineTableParallel(benchmark::State& state) {
  const acasx::AcasXuConfig config = [] {
    acasx::AcasXuConfig c;
    if (!bench::smoke()) c.space = acasx::StateSpaceConfig::fine();
    return c;
  }();
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, &pool));
  }
  state.SetLabel("fine grid (ablation discretization), precompiled stencils + pool");
}
BENCHMARK(BM_SolveFineTableParallel)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  std::printf("E6: offline logic generation cost.  Paper fn.2 claim: full value\n"
              "iteration < 5 minutes on a laptop; our backward induction over tau\n"
              "should be orders faster in optimized C++ (shape: laptop-feasible).\n"
              "Variants: *Virtual/*Reference = seed kernels re-expanding\n"
              "transitions every sweep; *Compiled/*Stencil = precompiled sparse\n"
              "kernels (this revision); *Parallel adds chunked pool sweeps.\n\n");
  if (cav::bench::smoke()) {
    std::printf("[smoke] CAV_BENCH_SMOKE set: standard/fine grids replaced by\n"
                "coarse; timings are for bit-rot detection only.\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
