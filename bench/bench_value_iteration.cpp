// E6 — offline solver cost (paper §III footnote 2: "For the real ACAS XU
// model, Value Iteration takes several minutes (less than 5 minutes) on an
// ordinary laptop PC").  Google-benchmark timings for the backward-
// induction solve across discretizations, serial and parallel, plus the
// toy-model value iteration.
#include <benchmark/benchmark.h>

#include "acasx/offline_solver.h"
#include "mdp/value_iteration.h"
#include "toy2d/toy2d_mdp.h"
#include "util/thread_pool.h"

namespace {

using namespace cav;

void BM_SolveToy2d(benchmark::State& state) {
  const toy2d::Toy2dMdp model{toy2d::Config{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(toy2d::solve(model));
  }
  state.SetLabel("490-state SIII model, full value iteration");
}
BENCHMARK(BM_SolveToy2d)->Unit(benchmark::kMillisecond);

void BM_SolveCoarseTable(benchmark::State& state) {
  const acasx::AcasXuConfig config = acasx::AcasXuConfig::coarse();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config));
  }
  state.SetLabel("coarse grid, serial");
}
BENCHMARK(BM_SolveCoarseTable)->Unit(benchmark::kMillisecond);

void BM_SolveStandardTableSerial(benchmark::State& state) {
  const acasx::AcasXuConfig config = acasx::AcasXuConfig::standard();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config));
  }
  state.SetLabel("standard grid (1.9M Q rows x 41 tau layers), serial == the paper's laptop setting");
}
BENCHMARK(BM_SolveStandardTableSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SolveStandardTableParallel(benchmark::State& state) {
  const acasx::AcasXuConfig config = acasx::AcasXuConfig::standard();
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, &pool));
  }
  state.SetLabel("standard grid, thread pool");
}
BENCHMARK(BM_SolveStandardTableParallel)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SolveFineTableParallel(benchmark::State& state) {
  const acasx::AcasXuConfig config = [] {
    acasx::AcasXuConfig c;
    c.space = acasx::StateSpaceConfig::fine();
    return c;
  }();
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::solve_logic_table(config, &pool));
  }
  state.SetLabel("fine grid (ablation discretization)");
}
BENCHMARK(BM_SolveFineTableParallel)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E6: offline logic generation cost.  Paper fn.2 claim: full value\n"
              "iteration < 5 minutes on a laptop; our backward induction over tau\n"
              "should be orders faster in optimized C++ (shape: laptop-feasible).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
