// E17 — Sharded-campaign scaling: the same validation campaign run with
// 1, 2, and 4 cav_worker processes (dist/campaign_driver.h) must produce
// BIT-identical rates at every width, and the wall clock should drop as
// workers are added.  Determinism is the hard gate (non-zero exit on any
// mismatch); the >=1.5x speedup at 2 workers is an expectation printed as
// a warning — single-core CI boxes can't honor it and must not fail.
// A 2-way sharded offline solve rides along as a second determinism probe
// of the dist layer (tau-layer sweeps reassembled across processes).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "acasx/offline_solver.h"
#include "bench_common.h"
#include "dist/campaign_driver.h"
#include "dist/solve_driver.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool rates_identical(const cav::core::SystemRates& a, const cav::core::SystemRates& b) {
  return a.encounters == b.encounters && a.nmacs == b.nmacs && a.alerts == b.alerts &&
         a.mean_min_separation_m == b.mean_min_separation_m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);

  std::size_t encounters = bench::smoke() ? 192 : 4000;
  if (const char* env = std::getenv("CAV_E17_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }

  bench::banner("E17: sharded-campaign scaling (1/2/4 worker processes)");

  dist::CampaignSpec spec;
  spec.config.encounters = encounters;
  spec.config.seed = 171717;
  spec.system_name = "tcas-sharded";
  spec.own_cas = dist::CasSpec::tcas_like();
  spec.intruder_cas = dist::CasSpec::tcas_like();

  std::printf("workload: %zu encounters, TCAS-like both sides, stripes handed to\n"
              "forked cav_worker processes over the dist/wire.h pipe protocol\n\n",
              encounters);
  std::printf("%-8s %-12s %-12s %-10s %-10s %-s\n", "workers", "NMAC rate", "wall [s]",
              "enc/s", "requeues", "bit-identical");

  bool determinism_ok = true;
  std::vector<double> walls;
  core::SystemRates reference;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    dist::CampaignDriverOptions options;
    options.num_workers = workers;
    options.stripes_per_worker = 4;

    const auto t0 = std::chrono::steady_clock::now();
    const core::CampaignResult result = dist::run_sharded_campaign(spec, options);
    const double wall_s = seconds_since(t0);
    walls.push_back(wall_s);

    if (workers == 1) reference = result.rates;
    const bool identical = rates_identical(result.rates, reference);
    determinism_ok = determinism_ok && identical;

    std::printf("%-8zu %-12.4f %-12.3f %-10.1f %-10zu %s\n", workers,
                result.rates.nmac_rate(), wall_s,
                static_cast<double>(encounters) / wall_s, result.requeues,
                identical ? "yes" : "NO  <-- FAILURE");
    const std::string prefix = "e17.w" + std::to_string(workers) + ".";
    bench::record_metric(prefix + "wall_s", wall_s);
    bench::record_metric(prefix + "enc_per_s", static_cast<double>(encounters) / wall_s);
  }

  const double speedup2 = walls[0] / walls[1];
  const double speedup4 = walls[0] / walls[2];
  bench::record_metric("e17.speedup_2w", speedup2);
  bench::record_metric("e17.speedup_4w", speedup4);
  std::printf("\nspeedup vs 1 worker: 2w %.2fx, 4w %.2fx\n", speedup2, speedup4);

  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    std::printf("single-core host (%u): the >=1.5x 2-worker expectation is not gated here\n",
                cores);
  } else if (bench::smoke()) {
    std::printf("smoke mode: workloads are shrunken, timings meaningless — not gated\n");
  } else if (speedup2 < 1.5) {
    std::printf("WARNING: 2-worker speedup %.2fx below the 1.5x expectation on a %u-core "
                "host (not a failure gate; determinism is)\n",
                speedup2, cores);
  } else {
    std::printf("2-worker speedup meets the >=1.5x expectation on this %u-core host\n", cores);
  }

  // Second determinism probe: a 2-way sharded offline solve (tau layers
  // swept by grid slice across the fleet) against the serial solver.  The
  // coarse space keeps this bounded in every mode.
  const acasx::AcasXuConfig solve_config = acasx::AcasXuConfig::coarse();
  const auto serial_t0 = std::chrono::steady_clock::now();
  const acasx::LogicTable serial = acasx::solve_logic_table(solve_config);
  const double serial_s = seconds_since(serial_t0);

  dist::SolveDriverOptions solve_options;
  solve_options.num_workers = 2;
  dist::ShardedSolveReport report;
  const std::string image = bench::output_dir() + "/e17_pair_stencils.cavt";
  const auto sharded_t0 = std::chrono::steady_clock::now();
  const acasx::LogicTable sharded =
      dist::solve_logic_table_sharded(solve_config, image, solve_options, &report);
  const double sharded_s = seconds_since(sharded_t0);

  bool solve_identical = sharded.num_entries() == serial.num_entries();
  for (std::size_t i = 0; solve_identical && i < serial.num_entries(); ++i) {
    solve_identical = sharded.values()[i] == serial.values()[i];
  }
  determinism_ok = determinism_ok && solve_identical;
  std::printf("\n2-way sharded solve (coarse space): serial %.3f s, sharded %.3f s "
              "(stencil compile %.3f s), bit-identical: %s\n",
              serial_s, sharded_s, report.stencil_build_s,
              solve_identical ? "yes" : "NO  <-- FAILURE");
  bench::record_metric("e17.solve_serial_s", serial_s);
  bench::record_metric("e17.solve_sharded_2w_s", sharded_s);
  std::remove(image.c_str());

  if (!determinism_ok) {
    std::printf("\nFAIL: sharded execution perturbed the results — the bit-identity "
                "contract is broken\n");
    return 1;
  }
  std::printf("\nall widths bit-identical — determinism gate passed\n");
  return 0;
}
