// E7 — Monte-Carlo validation (paper §II/§IV narrative): under a common
// statistical encounter model, the optimized ACAS XU-style logic should
// dominate the hand-crafted TCAS-like baseline on the safety/alert
// trade-off ("if with a good model the generated logic can outperform TCAS
// in term of safety and false alarm rate"), and all systems should beat
// unequipped flight.  Rates come with Wilson 95% CIs; the traffic sample
// is identical (paired) across systems.
#include <cstdio>
#include <cstdlib>

#include "baselines/svo.h"
#include "baselines/tcas_like.h"
#include "bench_common.h"
#include "core/validation_campaign.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  std::size_t encounters = bench::smoke() ? 60 : 4000;
  if (const char* env = std::getenv("CAV_E7_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }

  bench::banner("E7: Monte-Carlo risk comparison under a common encounter model");
  const auto table = bench::standard_table();

  const encounter::StatisticalEncounterModel model;
  core::MonteCarloConfig config;
  config.encounters = encounters;
  config.seed = 424242;

  std::printf("traffic: %zu sampled conflict-biased encounters (see DESIGN.md\n"
              "substitutions: parametric stand-in for the radar-derived models of\n"
              "refs [5, 6], which are not public and are doubted for UAVs in SIV)\n\n",
              config.encounters);

  struct Row {
    const char* name;
    sim::CasFactory factory;
  };
  const Row rows[] = {
      {"unequipped", sim::CasFactory{}},
      {"TCAS-like", baselines::TcasLikeCas::factory()},
      {"SVO", baselines::SvoCas::factory()},
      {"ACAS-XU", sim::AcasXuCas::factory(table)},
  };

  // One ValidationCampaign per system (the primary validation surface —
  // estimate_rates is its deprecated single-stripe wrapper).
  std::vector<core::SystemRates> results;
  for (const Row& row : rows) {
    const core::ValidationCampaign campaign(model, config, row.name, row.factory, row.factory);
    results.push_back(campaign.run(&bench::pool()).rates);
  }
  const core::SystemRates& unequipped = results.front();

  std::printf("%-12s %-22s %-22s %-24s %-14s\n", "system", "NMAC rate [95% CI]",
              "alert rate [95% CI]", "risk ratio [95% CI]", "mean minsep[m]");
  const std::string csv_path = bench::output_dir() + "/montecarlo_riskratio.csv";
  CsvWriter csv(csv_path);
  csv.header({"system", "encounters", "nmacs", "nmac_rate", "nmac_lo", "nmac_hi", "alerts",
              "alert_rate", "risk_ratio", "risk_lo", "risk_hi", "mean_min_sep_m"});
  for (const auto& r : results) {
    const auto nmac_ci = r.nmac_ci();
    const auto alert_ci = r.alert_ci();
    // Wilson-aware ratio: a zero-NMAC baseline prints as undefined (the
    // kRiskRatioUndefined sentinel) instead of the historical quiet NaN.
    const core::RiskRatioEstimate rr = core::risk_ratio_wilson(r, unequipped);
    if (rr.defined) {
      std::printf("%-12s %.4f [%.4f,%.4f] %.4f [%.4f,%.4f] %.4f [%.4f,%.4f]  %-14.1f\n",
                  r.system.c_str(), r.nmac_rate(), nmac_ci.lo, nmac_ci.hi, r.alert_rate(),
                  alert_ci.lo, alert_ci.hi, rr.ratio, rr.lo, rr.hi, r.mean_min_separation_m);
    } else {
      std::printf("%-12s %.4f [%.4f,%.4f] %.4f [%.4f,%.4f] undefined (0-NMAC base)  %-14.1f\n",
                  r.system.c_str(), r.nmac_rate(), nmac_ci.lo, nmac_ci.hi, r.alert_rate(),
                  alert_ci.lo, alert_ci.hi, r.mean_min_separation_m);
    }
    csv.cell(r.system).cell(r.encounters).cell(r.nmacs).cell(r.nmac_rate()).cell(nmac_ci.lo)
        .cell(nmac_ci.hi).cell(r.alerts).cell(r.alert_rate()).cell(rr.ratio).cell(rr.lo)
        .cell(rr.hi).cell(r.mean_min_separation_m);
    csv.end_row();
  }
  std::printf("\nCSV: %s\n", csv_path.c_str());

  std::printf("\npaper expectation (shape): every equipped system has risk ratio << 1;\n"
              "the optimized table should match or beat the hand-crafted TCAS-like\n"
              "logic on NMAC rate with a lower alert rate (the MBO selling point).\n");
  return 0;
}
