// E12 — Traffic-density sweep (the arXiv:1602.04762 axis as a first-class
// experiment): NMAC rate and advisory (alert) rate versus intruder count
// K for the nearest-threat policy against the cost-fused multi-threat
// resolver, under identical statistical traffic (paired seeds), plus the
// headline converging-ring comparison that E11 exposed and PR 4 closes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/monte_carlo.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

namespace {

const char* policy_name(cav::sim::ThreatPolicy policy) {
  return policy == cav::sim::ThreatPolicy::kNearest ? "nearest" : "cost-fused";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);

  std::size_t encounters = bench::smoke() ? 24 : 400;
  if (const char* env = std::getenv("CAV_E12_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }

  bench::banner("E12: NMAC/advisory rate vs traffic density, nearest vs cost-fused");
  const auto table = bench::standard_table();
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);
  const encounter::StatisticalEncounterModel model;

  std::printf("workload: %zu encounters per (K, policy), equipped own-ship and intruders,\n"
              "identical traffic across policies (paired seeds)\n\n",
              encounters);
  std::printf("%-4s %-12s %-12s %-12s %-12s %-12s %-10s\n", "K", "policy", "NMAC rate",
              "alert rate", "mean sep", "enc/s", "wall [s]");

  const std::string csv_path = bench::output_dir() + "/density_sweep.csv";
  CsvWriter csv(csv_path);
  csv.header({"intruders", "policy", "encounters", "nmac_rate", "alert_rate",
              "mean_min_separation_m", "enc_per_s", "wall_s"});

  const auto ks = bench::smoke() ? std::vector<std::size_t>{1, 2, 4}
                                 : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8};
  for (const std::size_t k : ks) {
    double nearest_nmac = 0.0;
    for (const sim::ThreatPolicy policy :
         {sim::ThreatPolicy::kNearest, sim::ThreatPolicy::kCostFused}) {
      core::MonteCarloConfig config;
      config.encounters = encounters;
      config.intruders = k;
      config.seed = 777;
      config.sim.threat_policy = policy;

      const auto t0 = std::chrono::steady_clock::now();
      const auto rates =
          core::estimate_rates(model, config, policy_name(policy), equipped, equipped,
                               &bench::pool());
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double enc_per_s = static_cast<double>(encounters) / wall_s;

      std::printf("%-4zu %-12s %-12.4f %-12.4f %-12.1f %-12.1f %-10.3f\n", k,
                  policy_name(policy), rates.nmac_rate(), rates.alert_rate(),
                  rates.mean_min_separation_m, enc_per_s, wall_s);
      csv.cell(k).cell(policy_name(policy)).cell(encounters).cell(rates.nmac_rate())
          .cell(rates.alert_rate()).cell(rates.mean_min_separation_m).cell(enc_per_s)
          .cell(wall_s);
      csv.end_row();

      const std::string prefix =
          "e12.k" + std::to_string(k) + "." + policy_name(policy) + ".";
      bench::record_metric(prefix + "nmac_rate", rates.nmac_rate());
      bench::record_metric(prefix + "alert_rate", rates.alert_rate());
      bench::record_metric(prefix + "wall_s", wall_s);

      if (policy == sim::ThreatPolicy::kNearest) {
        nearest_nmac = rates.nmac_rate();
      } else if (k > 1 && rates.nmac_rate() > nearest_nmac) {
        std::printf("  note: cost-fused above nearest at K=%zu\n", k);
      }
    }
  }
  std::printf("\nCSV: %s\n", csv_path.c_str());

  // The converging ring (the E11 gap): paired seeds, all aircraft equipped.
  const std::size_t ring_k = 4;
  const int ring_seeds = bench::smoke() ? 12 : 60;
  const scenarios::Scenario ring = scenarios::converging_ring(ring_k);
  std::printf("\nconverging-ring K=%zu over %d paired seeds (all equipped):\n", ring_k,
              ring_seeds);
  for (const sim::ThreatPolicy policy :
       {sim::ThreatPolicy::kNearest, sim::ThreatPolicy::kCostFused}) {
    int nmacs = 0;
    int vetoes = 0;
    int disagreements = 0;
    for (int seed = 1; seed <= ring_seeds; ++seed) {
      sim::SimConfig config;
      config.threat_policy = policy;
      const auto r = scenarios::run_scenario(ring, config, equipped, equipped, seed);
      if (r.own_nmac()) ++nmacs;
      vetoes += r.own.resolver.vetoes;
      disagreements += r.own.resolver.disagreements;
    }
    std::printf("  %-12s own NMACs %d/%d  (resolver vetoes %d, fused-vs-nearest "
                "disagreements %d)\n",
                policy_name(policy), nmacs, ring_seeds, vetoes, disagreements);
    bench::record_metric(std::string("e12.ring_k4.") + policy_name(policy) + ".nmacs",
                         nmacs);
  }
  return 0;
}
