// E12 — Traffic-density sweep (the arXiv:1602.04762 axis as a first-class
// experiment): NMAC rate and advisory (alert) rate versus intruder count
// K for the nearest-threat policy against the cost-fused multi-threat
// resolver and the joint-threat table policy, under identical statistical
// traffic (paired seeds), plus the headline converging-ring comparison
// that E11 exposed, PR 4 narrowed (cost fusion), and the joint table
// narrows further (the symmetric co-altitude squeeze).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "acasx/joint_solver.h"
#include "bench_common.h"
#include "core/validation_campaign.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

namespace {

const char* policy_name(cav::sim::ThreatPolicy policy) {
  switch (policy) {
    case cav::sim::ThreatPolicy::kNearest: return "nearest";
    case cav::sim::ThreatPolicy::kCostFused: return "cost-fused";
    case cav::sim::ThreatPolicy::kJointTable: return "joint-table";
  }
  return "?";
}

constexpr cav::sim::ThreatPolicy kPolicies[] = {
    cav::sim::ThreatPolicy::kNearest,
    cav::sim::ThreatPolicy::kCostFused,
    cav::sim::ThreatPolicy::kJointTable,
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);

  std::size_t encounters = bench::smoke() ? 24 : 400;
  if (const char* env = std::getenv("CAV_E12_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }

  bench::banner("E12: NMAC/advisory rate vs traffic density, "
                "nearest vs cost-fused vs joint-table");
  const auto table = bench::standard_table();

  // The joint-threat table rides the same smoke convention as the
  // pairwise one: coarse under bench-smoke, full-size otherwise.
  const auto joint_t0 = std::chrono::steady_clock::now();
  const auto joint = std::make_shared<const acasx::JointLogicTable>(acasx::solve_joint_table(
      bench::smoke() ? acasx::JointConfig::coarse() : acasx::JointConfig::standard(),
      &bench::pool()));
  std::printf("joint table solved in %.3f s (%zu entries)\n",
              std::chrono::duration<double>(std::chrono::steady_clock::now() - joint_t0).count(),
              joint->num_entries());

  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);
  const sim::CasFactory joint_equipped = sim::AcasXuCas::factory(table, {}, {}, {}, joint);
  const auto factory_for = [&](sim::ThreatPolicy policy) -> const sim::CasFactory& {
    return policy == sim::ThreatPolicy::kJointTable ? joint_equipped : equipped;
  };
  const encounter::StatisticalEncounterModel model;

  std::printf("workload: %zu encounters per (K, policy), equipped own-ship and intruders,\n"
              "identical traffic across policies (paired seeds)\n\n",
              encounters);
  std::printf("%-4s %-12s %-12s %-12s %-12s %-12s %-10s\n", "K", "policy", "NMAC rate",
              "alert rate", "mean sep", "enc/s", "wall [s]");

  const std::string csv_path = bench::output_dir() + "/density_sweep.csv";
  CsvWriter csv(csv_path);
  csv.header({"intruders", "policy", "encounters", "nmac_rate", "alert_rate",
              "mean_min_separation_m", "enc_per_s", "wall_s"});

  const auto ks = bench::smoke() ? std::vector<std::size_t>{1, 2, 4}
                                 : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8};
  for (const std::size_t k : ks) {
    double nearest_nmac = 0.0;
    for (const sim::ThreatPolicy policy : kPolicies) {
      core::MonteCarloConfig config;
      config.encounters = encounters;
      config.intruders = k;
      config.seed = 777;
      config.sim.threat_policy = policy;

      const auto t0 = std::chrono::steady_clock::now();
      const core::ValidationCampaign campaign(model, config, policy_name(policy),
                                              factory_for(policy), factory_for(policy));
      const auto rates = campaign.run(&bench::pool()).rates;
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double enc_per_s = static_cast<double>(encounters) / wall_s;

      std::printf("%-4zu %-12s %-12.4f %-12.4f %-12.1f %-12.1f %-10.3f\n", k,
                  policy_name(policy), rates.nmac_rate(), rates.alert_rate(),
                  rates.mean_min_separation_m, enc_per_s, wall_s);
      csv.cell(k).cell(policy_name(policy)).cell(encounters).cell(rates.nmac_rate())
          .cell(rates.alert_rate()).cell(rates.mean_min_separation_m).cell(enc_per_s)
          .cell(wall_s);
      csv.end_row();

      const std::string prefix =
          "e12.k" + std::to_string(k) + "." + policy_name(policy) + ".";
      bench::record_metric(prefix + "nmac_rate", rates.nmac_rate());
      bench::record_metric(prefix + "alert_rate", rates.alert_rate());
      bench::record_metric(prefix + "wall_s", wall_s);

      if (policy == sim::ThreatPolicy::kNearest) {
        nearest_nmac = rates.nmac_rate();
      } else if (k > 1 && rates.nmac_rate() > nearest_nmac) {
        std::printf("  note: %s above nearest at K=%zu\n", policy_name(policy), k);
      }
    }
  }
  std::printf("\nCSV: %s\n", csv_path.c_str());

  // The converging ring (the E11 gap): paired seeds, all aircraft equipped.
  const std::size_t ring_k = 4;
  const int ring_seeds = bench::smoke() ? 12 : 60;
  const scenarios::Scenario ring = scenarios::converging_ring(ring_k);
  std::printf("\nconverging-ring K=%zu over %d paired seeds (all equipped):\n", ring_k,
              ring_seeds);
  for (const sim::ThreatPolicy policy : kPolicies) {
    int nmacs = 0;
    int vetoes = 0;
    int disagreements = 0;
    int joint_cycles = 0;
    for (int seed = 1; seed <= ring_seeds; ++seed) {
      sim::SimConfig config;
      config.threat_policy = policy;
      const auto r =
          scenarios::run_scenario(ring, config, factory_for(policy), factory_for(policy), seed);
      if (r.own_nmac()) ++nmacs;
      vetoes += r.own.resolver.vetoes;
      disagreements += r.own.resolver.disagreements;
      joint_cycles += r.own.resolver.joint_cycles;
    }
    std::printf("  %-12s own NMACs %2d/%d  (resolver vetoes %d, fused-vs-nearest "
                "disagreements %d, joint cycles %d)\n",
                policy_name(policy), nmacs, ring_seeds, vetoes, disagreements, joint_cycles);
    bench::record_metric(std::string("e12.ring_k4.") + policy_name(policy) + ".nmacs",
                         nmacs);
  }
  return 0;
}
