// E4 — Figs. 7-8 and the §VII quantitative claim: tail-approach
// encounters (one UAV descending, the other climbing and approaching from
// the tail with tiny closure) end in mid-air collision in ~80-90 of 100
// runs, whereas head-on encounters collide in fewer than 5 of 100.
//
// The bench renders a typical discovered geometry (the Figs. 7-8 analog),
// then sweeps the tail-approach family across closure rates to map the
// blind-spot boundary of tau-based alerting.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/trajectory.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  bench::banner("E4: tail-approach challenging situations (paper Figs. 7-8, SVII)");
  const auto table = bench::standard_table();
  const auto acas = sim::AcasXuCas::factory(table);

  core::FitnessConfig config;
  config.runs_per_encounter = 100;
  const core::EncounterEvaluator evaluator(config, acas, acas);

  // --- The Figs. 7-8 picture: one instrumented tail-approach run. ---
  core::FitnessConfig trace_config = config;
  trace_config.runs_per_encounter = 1;
  const core::EncounterEvaluator tracer(trace_config, acas, acas);
  const sim::SimResult run =
      tracer.run_once(encounter::tail_approach(), /*stream_id=*/7, /*run_index=*/0, true);
  std::printf("\n%s\n", sim::render_side_view(run.trajectory).c_str());
  std::printf("typical tail approach: min separation %.1f m, NMAC: %s, own alerted: %s\n",
              run.proximity.min_distance_m, run.nmac ? "YES" : "no",
              run.own.ever_alerted ? "yes" : "NO (the blind spot)");

  const std::string csv_path = bench::output_dir() + "/fig78_tail_trajectory.csv";
  sim::write_trajectory_csv(run.trajectory, csv_path);
  std::printf("trajectory CSV: %s\n", csv_path.c_str());

  // --- The headline contrast. ---
  bench::banner("accident rates over 100 runs (paper: tail 80-90/100, head-on <5/100)");
  std::printf("%-28s %-10s %-14s %-10s %-10s\n", "encounter", "NMAC", "mean miss[m]", "fitness",
              "alerted");
  const auto report = [&](const char* name, const encounter::EncounterParams& params,
                          std::uint64_t stream) {
    const auto eval = evaluator.evaluate(params, stream);
    std::printf("%-28s %3zu/%-6zu %-14.1f %-10.1f %4.0f%%\n", name, eval.nmac_count, eval.runs,
                eval.mean_miss_m, eval.fitness, 100.0 * eval.alert_fraction_own);
    return eval;
  };
  report("tail approach (Figs. 7-8)", encounter::tail_approach(), 1);
  report("head-on (Fig. 5)", encounter::head_on(), 2);
  report("crossing", encounter::crossing(), 3);
  report("descending intruder", encounter::descending_intruder(), 4);

  // --- Closure-rate sweep: where does the blind spot end? ---
  bench::banner("closure-rate sweep of the tail family (blind-spot boundary)");
  std::printf("%-18s %-12s %-10s %-10s %-12s\n", "closure [m/s]", "tau est[s]", "NMAC",
              "alerted", "class");
  const std::string sweep_path = bench::output_dir() + "/tail_closure_sweep.csv";
  CsvWriter csv(sweep_path);
  csv.header({"closure_mps", "nmac_rate", "alert_fraction"});
  for (const double closure : {1.0, 2.0, 4.0, 6.0, 10.0, 15.0, 20.0, 30.0}) {
    encounter::EncounterParams params = encounter::tail_approach();
    params.gs_int_mps = params.gs_own_mps + closure;  // overtake at this speed
    const auto eval = evaluator.evaluate(params, 100 + static_cast<std::uint64_t>(closure));
    const double range0 = closure * params.t_cpa_s;  // initial separation
    const double tau0 = (range0 > 152.4) ? (range0 - 152.4) / closure : 0.0;
    std::printf("%-18.1f %-12.1f %3zu/%-6zu %4.0f%%      %s\n", closure, tau0, eval.nmac_count,
                eval.runs, 100.0 * eval.alert_fraction_own,
                core::encounter_class_name(core::classify(params)));
    csv.cell(closure).cell(eval.nmac_rate()).cell(eval.alert_fraction_own);
    csv.end_row();
  }
  std::printf("sweep CSV: %s\n", sweep_path.c_str());

  std::printf("\npaper expectation: at low closure the tau estimate is degenerate (the\n"
              "pair is inside/near DMOD with near-zero closure), the logic stays\n"
              "silent, and the climb-through-descend geometry collides in most runs;\n"
              "fast overtakes restore normal alerting.\n");
  return 0;
}
