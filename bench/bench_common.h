// Shared plumbing for the experiment benches: a cached standard logic
// table (solved once per process), output-directory handling, and small
// printing helpers so every bench emits paper-comparable rows.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "acasx/offline_solver.h"
#include "util/thread_pool.h"

namespace cav::bench {

/// Process-wide thread pool for solving and fitness evaluation.
inline ThreadPool& pool() {
  static ThreadPool instance;
  return instance;
}

/// Parse the shared bench flags and start the bench wall clock; call first
/// thing in main().  Currently one flag: `--json <path>` makes the bench
/// write a machine-readable result file at exit — {"bench": <name>,
/// "smoke": <bool>, "wall_s": <total>, "metrics": {...}} — which CI merges
/// into the bench_results.json artifact and feeds to
/// tools/check_bench_regression.py.  Unknown flags are ignored (the
/// bench-smoke target passes benchmark-library flags to every binary).
void init(int argc, char** argv);

/// Record a named numeric result for the --json artifact (no-op when
/// --json was not passed).  Use stable "experiment.case.metric" keys —
/// the regression baselines are keyed on them.  Re-recording a key
/// overwrites it.
void record_metric(const std::string& name, double value);

/// The standard logic table: loaded from the on-disk cache when a
/// compatible one exists (the production offline/online split), otherwise
/// solved and cached for the next bench in the run.
std::shared_ptr<const acasx::LogicTable> standard_table();

/// Where benches drop CSV artifacts (created on demand).
std::string output_dir();

/// Print a separator + title.
inline void banner(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

/// True when CAV_BENCH_SMOKE=1: the `bench-smoke` CMake target sets it so
/// every perf binary runs its code paths on shrunken workloads (coarse
/// grids, few encounters) purely to prove it still builds and executes —
/// timings in smoke mode are meaningless.
bool smoke();

/// The solver config a bench should use for "the standard table": the real
/// standard space normally, the coarse space under smoke mode.  Every bench
/// that solves its own table goes through this so none can accidentally run
/// a full standard solve inside the bench-smoke bit-rot check.
inline acasx::AcasXuConfig standard_or_smoke_config() {
  return smoke() ? acasx::AcasXuConfig::coarse() : acasx::AcasXuConfig::standard();
}

}  // namespace cav::bench
