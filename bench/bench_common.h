// Shared plumbing for the experiment benches: a cached standard logic
// table (solved once per process), output-directory handling, and small
// printing helpers so every bench emits paper-comparable rows.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "acasx/offline_solver.h"
#include "util/thread_pool.h"

namespace cav::bench {

/// Process-wide thread pool for solving and fitness evaluation.
inline ThreadPool& pool() {
  static ThreadPool instance;
  return instance;
}

/// The standard logic table: loaded from the on-disk cache when a
/// compatible one exists (the production offline/online split), otherwise
/// solved and cached for the next bench in the run.
std::shared_ptr<const acasx::LogicTable> standard_table();

/// Where benches drop CSV artifacts (created on demand).
std::string output_dir();

/// Print a separator + title.
inline void banner(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace cav::bench
