// E8 — end-to-end search cost (paper §VI footnote 5: "it took about 300 s
// on an ordinary laptop PC" for the §VII search).  Microbenchmarks of the
// hot path (tau estimation, table interpolation, one encounter simulation,
// one 10-run fitness evaluation), from which the full E3 workload cost is
// projected and compared to the measured wall time in bench E3.
#include <benchmark/benchmark.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "bench_common.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"

namespace {

using namespace cav;

std::shared_ptr<const acasx::LogicTable> table() {
  // Shared helper: disk-cached standard table (coarse under smoke mode).
  return bench::standard_table();
}

void BM_TauEstimate(benchmark::State& state) {
  const acasx::AircraftTrack own{{0, 0, 1000}, {40, 0, 0}};
  const acasx::AircraftTrack intr{{2000, 120, 1030}, {-38, 2, -1}};
  const acasx::OnlineConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acasx::AcasXuLogic::estimate_tau(own, intr, config));
  }
}
BENCHMARK(BM_TauEstimate);

void BM_TableActionCosts(benchmark::State& state) {
  const auto& t = table();
  double tau = 3.0;
  for (auto _ : state) {
    tau = tau >= 39.0 ? 3.0 : tau + 0.37;
    benchmark::DoNotOptimize(
        t->action_costs(tau, 123.0, 4.0, -7.0, acasx::Advisory::kCoc));
  }
  state.SetLabel("5-advisory interpolated lookup (2 tau layers x 8 vertices)");
}
BENCHMARK(BM_TableActionCosts);

void BM_OnlineDecide(benchmark::State& state) {
  acasx::AcasXuLogic logic(table());
  const acasx::AircraftTrack own{{0, 0, 1000}, {40, 0, 0}};
  const acasx::AircraftTrack intr{{1400, 0, 1010}, {-40, 0, -1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic.decide(own, intr));
  }
}
BENCHMARK(BM_OnlineDecide);

void BM_EncounterSimulation(benchmark::State& state) {
  const bool tail = state.range(0) == 1;
  const encounter::EncounterParams params =
      tail ? encounter::tail_approach() : encounter::head_on();
  core::FitnessConfig config;
  config.runs_per_encounter = 1;
  const core::EncounterEvaluator evaluator(config, sim::AcasXuCas::factory(table()),
                                           sim::AcasXuCas::factory(table()));
  std::uint64_t run = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.run_once(params, 1, run++, false));
  }
  state.SetLabel(tail ? "tail approach (90 s sim)" : "head-on (85 s sim)");
}
BENCHMARK(BM_EncounterSimulation)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_FitnessEvaluation(benchmark::State& state) {
  core::FitnessConfig config;
  config.runs_per_encounter = static_cast<std::size_t>(state.range(0));
  const core::EncounterEvaluator evaluator(config, sim::AcasXuCas::factory(table()),
                                           sim::AcasXuCas::factory(table()));
  const encounter::EncounterParams params = encounter::head_on();
  std::uint64_t stream = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(params, stream++));
  }
  state.SetLabel("one GA individual = N stochastic runs");
}
BENCHMARK(BM_FitnessEvaluation)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  std::printf("E8: search cost breakdown.  Paper fn.5: the SVII search (1000\n"
              "evaluations x 100 runs) took ~300 s on a 2016 laptop in serial Java.\n"
              "Project our cost as: 1000 x BM_FitnessEvaluation/100 (serial), divided\n"
              "by worker count when the GA evaluates individuals in parallel; compare\n"
              "with the measured wall time printed by bench_ga_fitness_generations.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
