// E1 — §III walkthrough (Fig. 2): build the paper's 2-D collision
// avoidance MDP, generate the logic table by value iteration, display
// policy slices, and evaluate the closed loop against the no-avoidance
// baseline.
//
// Paper-comparable outputs:
//   * the policy is a lookup table over {y_o, x_r, y_i} (§III);
//   * it maneuvers only when collision risk exists and levels off
//     otherwise (the stated purpose of the 50-point level-off reward);
//   * closed-loop simulation shows the collision rate collapse vs
//     unequipped flight.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "toy2d/toy2d_mdp.h"
#include "toy2d/toy2d_sim.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;
  using namespace cav::toy2d;

  bench::banner("E1: 2-D toy collision avoidance MDP (paper SIII, Fig. 2)");

  const Config config;
  const Toy2dMdp model(config);
  const auto t0 = std::chrono::steady_clock::now();
  const PolicyTable table = solve(model);
  const double solve_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("model: %zu states, %zu actions; value iteration solved in %.4f s\n\n",
              model.num_states(), model.num_actions(), solve_s);

  for (const int y_int : {0, 2, -2}) {
    std::printf("%s\n", table.render_slice(y_int).c_str());
  }

  std::printf("start-state values (expected cost, collision course y_o = y_i = 0):\n");
  for (int xr = 1; xr <= config.x_max; ++xr) {
    std::printf("  x_r = %2d   V = %9.2f\n", xr, table.value_for({0, xr, 0}));
  }

  bench::banner("closed-loop evaluation: 20000 episodes from (0, 9, 0)");
  const GridState start{0, config.x_max, 0};
  TablePolicy policy(table);
  AlwaysLevel level;
  const auto with_policy = evaluate(model, policy, start, 20000, 7);
  const auto with_level = evaluate(model, level, start, 20000, 7);

  std::printf("%-16s %-16s %-20s %-12s\n", "controller", "collision rate", "mean maneuvers/ep",
              "mean cost");
  std::printf("%-16s %-16.4f %-20.2f %-12.1f\n", "logic table", with_policy.collision_rate(),
              with_policy.mean_maneuver_steps, with_policy.mean_cost);
  std::printf("%-16s %-16.4f %-20.2f %-12.1f\n", "always level", with_level.collision_rate(),
              with_level.mean_maneuver_steps, with_level.mean_cost);
  std::printf("\npaper expectation: the generated table avoids collisions while mostly\n"
              "flying level; the model value at the start state (%.1f) predicts the\n"
              "measured closed-loop mean cost (%.1f) because model == simulator here.\n",
              table.value_for(start), with_policy.mean_cost);
  return 0;
}
