// E16 — Airspace scaling: wall-clock of one city-corridor simulation as
// the fleet size K grows, event-driven adaptive engine (spatial index +
// adaptive timers, the defaults with a city-sized interaction radius) vs
// the dense legacy configuration (all-pairs index, fixed-dt timers,
// AirspaceConfig::legacy()).  The dense engine is O(K^2) per decision
// cycle; the spatial index should hold the adaptive curve near O(near
// pairs), i.e. sub-quadratic in K on corridor traffic whose interactions
// are local.  The printed scaling exponent is the headline number
// (docs/REPRODUCING.md E16).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  cav::bench::init(argc, argv);
  using namespace cav;

  bench::banner("E16: airspace scaling on city-corridor traffic");
  const auto table = bench::standard_table();
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);

  // The dense engine is quadratic; cap its sweep so the bit-rot smoke run
  // stays in budget while the adaptive sweep still reaches K >= 256.
  const std::vector<std::size_t> adaptive_ks =
      bench::smoke() ? std::vector<std::size_t>{64, 256}
                     : std::vector<std::size_t>{64, 256, 1024};
  const std::vector<std::size_t> dense_ks =
      bench::smoke() ? std::vector<std::size_t>{64} : std::vector<std::size_t>{64, 256};

  constexpr std::uint64_t kSeed = 2016;
  constexpr double kCityRadiusM = 2000.0;  // == city_corridors lane spacing

  auto run_city = [&](std::size_t aircraft, bool adaptive) {
    const scenarios::Scenario city = scenarios::city_corridors(aircraft, kSeed);
    sim::SimConfig config;
    if (adaptive) {
      config.airspace.interaction_radius_m = kCityRadiusM;
    } else {
      config.airspace = sim::AirspaceConfig::legacy();
    }
    return scenarios::run_scenario(city, config, equipped, equipped, kSeed);
  };

  std::printf("workload: city_corridors(K), every aircraft ACAS XU-equipped,\n"
              "120 s horizon, interaction radius %.0f m (adaptive) vs legacy dense\n\n",
              kCityRadiusM);
  std::printf("%-6s %-12s %-12s %-12s %-12s %-12s %-12s\n", "K", "adaptive[s]", "dense[s]",
              "peak pairs", "K(K-1)/2", "fine steps", "coarse");

  const std::string csv_path = bench::output_dir() + "/airspace_scale.csv";
  CsvWriter csv(csv_path);
  csv.header({"aircraft", "adaptive_s", "dense_s", "peak_active_pairs", "all_pairs",
              "fine_agent_steps", "coarse_agent_steps", "monitored_pairs"});

  std::vector<double> adaptive_wall;
  for (const std::size_t k : adaptive_ks) {
    const sim::SimResult adaptive = run_city(k, /*adaptive=*/true);
    adaptive_wall.push_back(adaptive.wall_time_s);

    double dense_s = 0.0;
    bool have_dense = false;
    for (const std::size_t dk : dense_ks) have_dense = have_dense || dk == k;
    if (have_dense) {
      const sim::SimResult dense = run_city(k, /*adaptive=*/false);
      dense_s = dense.wall_time_s;
      bench::record_metric("e16.k" + std::to_string(k) + ".dense_s", dense_s);
    }

    const std::size_t all_pairs = k * (k - 1) / 2;
    std::printf("%-6zu %-12.3f %-12s %-12zu %-12zu %-12zu %-12zu\n", k,
                adaptive.wall_time_s, have_dense ? std::to_string(dense_s).c_str() : "-",
                adaptive.stats.peak_active_pairs, all_pairs, adaptive.stats.fine_agent_steps,
                adaptive.stats.coarse_agent_steps);
    csv.cell(k).cell(adaptive.wall_time_s).cell(dense_s).cell(adaptive.stats.peak_active_pairs)
        .cell(all_pairs).cell(adaptive.stats.fine_agent_steps)
        .cell(adaptive.stats.coarse_agent_steps).cell(adaptive.stats.monitored_pairs);
    csv.end_row();

    bench::record_metric("e16.k" + std::to_string(k) + ".adaptive_s", adaptive.wall_time_s);
    bench::record_metric("e16.k" + std::to_string(k) + ".peak_active_pairs",
                         static_cast<double>(adaptive.stats.peak_active_pairs));
  }

  // Empirical scaling exponent over the adaptive sweep's endpoints:
  // wall ~ K^alpha.  The dense engine sits at alpha ~= 2; the spatial
  // index should hold the corridor workload well below that.
  const double alpha =
      std::log(adaptive_wall.back() / adaptive_wall.front()) /
      std::log(static_cast<double>(adaptive_ks.back()) / static_cast<double>(adaptive_ks.front()));
  std::printf("\nadaptive scaling exponent (K^alpha fit over endpoints): alpha = %.2f %s\n",
              alpha, alpha < 2.0 ? "(sub-quadratic)" : "(NOT sub-quadratic)");
  bench::record_metric("e16.scaling_exponent", alpha);
  std::printf("CSV: %s\n", csv_path.c_str());
  return alpha < 2.0 ? 0 : 1;
}
