// E14 — Degraded-mode fault-injection campaign: NMAC and advisory rates
// under bursty coordination loss, comms blackouts, ADS-B dropout bursts,
// and mixed equipage, for every threat policy (nearest, cost-fused,
// joint-table) plus the decision-only TCAS-like and SVO baselines, under
// identical traffic (paired seeds).  The paper validates the CAS in a perfect world;
// E14 measures how fast each policy's safety case erodes when the world
// degrades — and whether the multi-threat policies, which lean on the
// coordination link and the surveillance picture, erode faster than the
// policies that never needed them.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "acasx/joint_solver.h"
#include "baselines/svo.h"
#include "baselines/tcas_like.h"
#include "bench_common.h"
#include "core/monte_carlo.h"
#include "core/validation_campaign.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "util/csv.h"

namespace {

using cav::sim::ThreatPolicy;

const char* policy_name(ThreatPolicy policy) {
  switch (policy) {
    case ThreatPolicy::kNearest: return "nearest";
    case ThreatPolicy::kCostFused: return "cost-fused";
    case ThreatPolicy::kJointTable: return "joint-table";
  }
  return "?";
}

constexpr ThreatPolicy kPolicies[] = {
    ThreatPolicy::kNearest,
    ThreatPolicy::kCostFused,
    ThreatPolicy::kJointTable,
};

/// One fault-axis point: a label plus the knobs it turns.  Everything not
/// mentioned stays at the perfect-world default, so each row isolates one
/// degradation axis (the "loss x blackout x dropout x equipage" sweep is
/// factored into per-axis slices to stay readable and CI-affordable).
struct AxisPoint {
  std::string axis;
  std::string label;
  cav::core::MonteCarloConfig config;  ///< seed/policy filled per run
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);

  std::size_t encounters = bench::smoke() ? 16 : 300;
  if (const char* env = std::getenv("CAV_E14_ENCOUNTERS")) {
    encounters = static_cast<std::size_t>(std::atol(env));
  }
  const std::size_t intruders = 2;

  bench::banner("E14: degraded-mode campaign — link loss, blackouts, ADS-B "
                "dropouts, mixed equipage");
  const auto table = bench::standard_table();
  const auto joint_t0 = std::chrono::steady_clock::now();
  const auto joint = std::make_shared<const acasx::JointLogicTable>(acasx::solve_joint_table(
      bench::smoke() ? acasx::JointConfig::coarse() : acasx::JointConfig::standard(),
      &bench::pool()));
  std::printf("joint table solved in %.3f s (%zu entries)\n",
              std::chrono::duration<double>(std::chrono::steady_clock::now() - joint_t0).count(),
              joint->num_entries());

  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);
  const sim::CasFactory joint_equipped = sim::AcasXuCas::factory(table, {}, {}, {}, joint);
  const sim::CasFactory tcas = baselines::TcasLikeCas::factory();
  const sim::CasFactory svo = baselines::SvoCas::factory();
  const auto factory_for = [&](ThreatPolicy policy) -> const sim::CasFactory& {
    return policy == ThreatPolicy::kJointTable ? joint_equipped : equipped;
  };
  const encounter::StatisticalEncounterModel model;

  // --- The fault axes ------------------------------------------------
  // Axis 1 (comms-loss): uniform per-link loss, then Gilbert–Elliott
  // bursts at a comparable average loss so burstiness itself is isolated.
  // Axis 2 (blackout): a fleet-wide comms blackout window parked over the
  // typical CPA times of the statistical model.
  // Axis 3 (adsb): surveillance dropout bursts plus a staleness horizon,
  // so coasted tracks eventually drop instead of coasting forever.
  // Axis 4 (equipage): thinning intruder equipage, passive and
  // adversarial (maneuver-at-CPA) unequipped behavior.
  std::vector<AxisPoint> points;
  const auto add = [&points](std::string axis, std::string label) -> core::MonteCarloConfig& {
    points.push_back({std::move(axis), std::move(label), {}});
    return points.back().config;
  };
  add("baseline", "perfect-world");
  {
    const std::vector<double> losses =
        bench::smoke() ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5, 0.75};
    for (const double p : losses) {
      add("comms-loss", "uniform-" + std::to_string(static_cast<int>(p * 100)) + "pct")
          .sim.coordination.message_loss_prob = p;
    }
    for (const double enter : bench::smoke() ? std::vector<double>{0.3}
                                             : std::vector<double>{0.15, 0.3}) {
      auto& c = add("comms-loss",
                    "burst-enter-" + std::to_string(static_cast<int>(enter * 100)) + "pct");
      c.sim.coordination.burst_enter_prob = enter;
      c.sim.coordination.burst_exit_prob = 0.2;
      c.sim.coordination.burst_loss_prob = 1.0;
    }
  }
  for (const double dur : bench::smoke() ? std::vector<double>{30.0}
                                         : std::vector<double>{15.0, 30.0}) {
    auto& c = add("blackout", std::to_string(static_cast<int>(dur)) + "s");
    c.sim.fault.comms_blackouts.push_back({30.0, 30.0 + dur});
  }
  {
    auto& c = add("adsb", "dropout-20pct");
    c.sim.fault.adsb_dropout_burst_prob = 0.2;
    if (!bench::smoke()) {
      auto& s = add("adsb", "dropout-20pct-stale-8s");
      s.sim.fault.adsb_dropout_burst_prob = 0.2;
      s.sim.fault.track_staleness_horizon_s = 8.0;
    }
  }
  for (const double frac : bench::smoke() ? std::vector<double>{0.5}
                                          : std::vector<double>{0.75, 0.5, 0.25}) {
    add("equipage", "passive-" + std::to_string(static_cast<int>(frac * 100)) + "pct")
        .equipage_fraction = frac;
  }
  {
    auto& c = add("equipage", "adversarial-50pct");
    c.equipage_fraction = 0.5;
    c.unequipped_behavior = core::UnequippedBehavior::kManeuverAtCpa;
  }

  std::printf("workload: %zu encounters x K=%zu per (point, policy), paired seed 777;\n"
              "95%% Wilson intervals in brackets\n\n",
              encounters, intruders);
  std::printf("%-10s %-22s %-12s %-26s %-26s %-8s\n", "axis", "point", "policy",
              "NMAC rate [95% CI]", "alert rate [95% CI]", "wall[s]");

  const std::string csv_path = bench::output_dir() + "/degraded_modes.csv";
  CsvWriter csv(csv_path);
  csv.header({"axis", "point", "policy", "encounters", "nmac_rate", "nmac_lo", "nmac_hi",
              "alert_rate", "alert_lo", "alert_hi", "mean_min_separation_m", "wall_s"});

  const auto run_point = [&](const AxisPoint& point, const std::string& policy_label,
                             const sim::CasFactory& own, const sim::CasFactory& intr,
                             ThreatPolicy policy) {
    core::MonteCarloConfig config = point.config;
    config.encounters = encounters;
    config.intruders = intruders;
    config.seed = 777;
    config.sim.threat_policy = policy;

    const auto t0 = std::chrono::steady_clock::now();
    const auto rates = core::ValidationCampaign(model, config, policy_label, own, intr)
                           .run(&bench::pool())
                           .rates;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const auto nci = rates.nmac_ci();
    const auto aci = rates.alert_ci();
    char nmac_buf[32], alert_buf[32];
    std::snprintf(nmac_buf, sizeof nmac_buf, "%.4f [%.3f,%.3f]", rates.nmac_rate(), nci.lo,
                  nci.hi);
    std::snprintf(alert_buf, sizeof alert_buf, "%.4f [%.3f,%.3f]", rates.alert_rate(), aci.lo,
                  aci.hi);
    std::printf("%-10s %-22s %-12s %-26s %-26s %-8.2f\n", point.axis.c_str(),
                point.label.c_str(), policy_label.c_str(), nmac_buf, alert_buf, wall_s);
    csv.cell(point.axis).cell(point.label).cell(policy_label).cell(rates.encounters)
        .cell(rates.nmac_rate()).cell(nci.lo).cell(nci.hi).cell(rates.alert_rate())
        .cell(aci.lo).cell(aci.hi).cell(rates.mean_min_separation_m).cell(wall_s);
    csv.end_row();

    const std::string prefix = "e14." + point.axis + "." + point.label + "." + policy_label + ".";
    bench::record_metric(prefix + "nmac_rate", rates.nmac_rate());
    bench::record_metric(prefix + "alert_rate", rates.alert_rate());
  };

  for (const AxisPoint& point : points) {
    for (const ThreatPolicy policy : kPolicies) {
      run_point(point, policy_name(policy), factory_for(policy), factory_for(policy), policy);
    }
    // Decision-only baselines: no coordination, no multi-threat table —
    // the controls for "does degradation hit the table-driven policies
    // harder than a policy that never used the degraded machinery?"
    run_point(point, "tcas-like", tcas, tcas, ThreatPolicy::kNearest);
    run_point(point, "svo", svo, svo, ThreatPolicy::kNearest);
    std::printf("\n");
  }
  std::printf("CSV: %s\n", csv_path.c_str());

  // --- The GA-found degraded fixtures, pinned per policy -------------
  // The regression view of the attack campaign: each fixture replays its
  // frozen (geometry, conditions, seed) under all three policies.
  std::printf("GA-found degraded fixtures (frozen conditions + seed):\n");
  for (const std::string& name : scenarios::degraded_scenario_names()) {
    const scenarios::DegradedScenario fixture = scenarios::make_degraded_scenario(name);
    for (const ThreatPolicy policy : kPolicies) {
      sim::SimConfig config;
      config.threat_policy = policy;
      const auto r = scenarios::run_degraded_scenario(fixture, config, factory_for(policy),
                                                      factory_for(policy));
      std::printf("  %-26s %-12s own NMAC %d  min sep %7.1f m\n", name.c_str(),
                  policy_name(policy), r.own_nmac() ? 1 : 0, r.own_miss_distance_m());
      bench::record_metric("e14.fixture." + name + "." + policy_name(policy) + ".nmac",
                           r.own_nmac() ? 1.0 : 0.0);
    }
  }
  return 0;
}
