// E13 — Joint-threat offline solve cost: what the two-intruder joint
// table (acasx/joint_solver.h) costs to build relative to the pairwise
// table, how the compile-once / solve-per-revision split amortizes (the
// PR 2 refresh_costs path lifted to the joint state), and how the serial
// and pooled sweeps compare.  The paper's footnote-2 "<5 min on a laptop"
// budget is the yardstick: the joint state multiplies the pairwise grid
// by the secondary abstraction (h2 axis x delta bins x sense classes), so
// this bench is where that multiplier is measured instead of guessed.
#include <chrono>
#include <cstdio>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "bench_common.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cav;
  bench::init(argc, argv);
  bench::banner("E13: joint-threat offline solve cost (pairwise vs joint, refresh loop)");

  const acasx::JointConfig joint_config =
      bench::smoke() ? acasx::JointConfig::coarse() : acasx::JointConfig::standard();
  acasx::AcasXuConfig pairwise_config = bench::standard_or_smoke_config();

  const std::size_t joint_entries = joint_config.secondary.num_slabs() *
                                    (joint_config.space.tau_max + 1) *
                                    joint_config.grid().size() * acasx::kNumAdvisories *
                                    acasx::kNumAdvisories;
  std::printf("joint state: %zu grid points x %zu slabs x %zu tau layers "
              "(%zu Q entries, %.0f MB)\n\n",
              joint_config.grid().size(), joint_config.secondary.num_slabs(),
              joint_config.space.tau_max + 1, joint_entries,
              static_cast<double>(joint_entries) * sizeof(float) / 1e6);

  // Pairwise reference solve (same machinery, one intruder).
  {
    acasx::SolveStats stats;
    acasx::solve_logic_table(pairwise_config, &bench::pool(), &stats);
    std::printf("pairwise solve (pooled):      %8.3f s  (stencils %.3f s)\n",
                stats.wall_seconds, stats.stencil_build_seconds);
    bench::record_metric("e13.pairwise.solve_s", stats.wall_seconds);
  }

  // One-shot joint solve: serial vs pooled.
  {
    acasx::JointSolveStats stats;
    acasx::solve_joint_table(joint_config, nullptr, &stats);
    std::printf("joint one-shot (serial):      %8.3f s  (stencils %.3f s, %zu entries)\n",
                stats.wall_seconds, stats.stencil_build_seconds, stats.stencil_entries);
    bench::record_metric("e13.joint.oneshot_serial_s", stats.wall_seconds);
  }
  acasx::JointSolveStats pooled_stats;
  acasx::solve_joint_table(joint_config, &bench::pool(), &pooled_stats);
  std::printf("joint one-shot (pooled):      %8.3f s  (stencils %.3f s)\n",
              pooled_stats.wall_seconds, pooled_stats.stencil_build_seconds);
  bench::record_metric("e13.joint.oneshot_pooled_s", pooled_stats.wall_seconds);

  // Compile-once / solve-per-revision: the cost-revision loop never pays
  // the stencil build again.
  const auto compile_start = std::chrono::steady_clock::now();
  const acasx::JointOfflineSolver solver(joint_config, &bench::pool());
  const double compile_s = seconds_since(compile_start);
  std::printf("\ncompile stencils once:        %8.3f s  (%zu entries)\n", compile_s,
              solver.stencil_entries());
  bench::record_metric("e13.joint.compile_s", compile_s);

  const int revisions = bench::smoke() ? 2 : 4;
  acasx::CostModel costs = joint_config.costs;
  double revise_total = 0.0;
  for (int r = 0; r < revisions; ++r) {
    costs.maneuver_cost *= 1.1;  // a §III-style preference re-tune
    acasx::JointSolveStats stats;
    solver.solve(costs, &bench::pool(), &stats);
    revise_total += stats.wall_seconds;
  }
  std::printf("re-solve per cost revision:   %8.3f s  (mean of %d; one-shot pays %.3f s)\n",
              revise_total / revisions, revisions, pooled_stats.wall_seconds);
  bench::record_metric("e13.joint.refresh_solve_s", revise_total / revisions);
  return 0;
}
