#!/usr/bin/env python3
"""Merge per-bench --json result files into one bench_results.json.

Each bench binary invoked with `--json <path>` (the bench-smoke target does
this automatically) writes {"bench", "smoke", "wall_s", "metrics"}.  This
script folds a directory of those files into the repo's persistent perf
artifact shape:

    {
      "smoke": true,
      "benches": {
        "bench_value_iteration": {"wall_s": 1.2, "metrics": {...}},
        ...
      }
    }

Usage: merge_bench_json.py <dir-with-*.json> [-o bench_results.json]
"""
import argparse
import json
import pathlib
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_dir", type=pathlib.Path,
                        help="directory holding per-bench *.json files")
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=pathlib.Path("bench_results.json"))
    args = parser.parse_args()

    files = sorted(args.json_dir.glob("*.json"))
    if not files:
        print(f"error: no *.json files in {args.json_dir}", file=sys.stderr)
        return 1

    merged = {"smoke": None, "benches": {}}
    for path in files:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            print(f"error: {path}: {err}", file=sys.stderr)
            return 1
        name = data.get("bench", path.stem)
        merged["benches"][name] = {
            "wall_s": data.get("wall_s"),
            "metrics": data.get("metrics", {}),
        }
        smoke = data.get("smoke")
        if merged["smoke"] is None:
            merged["smoke"] = smoke
        elif merged["smoke"] != smoke:
            print(f"warning: {name} smoke={smoke} differs from earlier benches",
                  file=sys.stderr)

    args.output.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"merged {len(files)} bench results -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
