#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repo's markdown files.

Scans every tracked *.md file (or an explicit list) for inline markdown
links and images, `[text](target)`, and checks that relative targets exist
on disk.  The docs sweep (docs/ARCHITECTURE.md, docs/REPRODUCING.md,
README.md) cross-references source files and each other heavily; this
keeps a rename or file move from silently stranding them.

Checked:   relative file links, with or without an anchor ("docs/X.md",
           "src/sim/cas.h", "ARCHITECTURE.md#layer-map").  Anchors are
           validated against the target's headings when the target is a
           markdown file.
Ignored:   absolute URLs (http/https/mailto), pure in-page anchors
           ("#section"), and badge-style links into CI infrastructure
           ("../../actions/...", which only resolve on the hosting site).

Usage:
    check_markdown_links.py [--root REPO_ROOT] [files...]
Exit code 1 when any link is broken.
"""
import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code_fences(text: str) -> str:
    """Drop fenced code blocks so '# comment' lines don't register as headings."""
    kept, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.lstrip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return "\n".join(kept)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation dropped."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_in(md_path: pathlib.Path) -> set:
    try:
        text = md_path.read_text(encoding="utf-8")
    except OSError:
        return set()
    # GitHub suffixes repeated headings '-1', '-2', ... in document order.
    anchors, seen = set(), {}
    for line in strip_code_fences(text).splitlines():
        match = HEADING_RE.match(line)
        if not match:
            continue
        base = anchor_of(match.group(1))
        count = seen.get(base, 0)
        seen[base] = count + 1
        anchors.add(base if count == 0 else f"{base}-{count}")
    return anchors


def check_file(md_path: pathlib.Path, root: pathlib.Path) -> list:
    errors = []
    text = strip_code_fences(md_path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # in-page anchor; heading check below
            if anchor_of(target[1:]) not in anchors_in(md_path):
                errors.append(f"{md_path}: broken in-page anchor '{target}'")
            continue
        if target.startswith("../../actions/"):  # CI badge, resolves on the host only
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_path}: broken link '{target}' "
                          f"(no such file: {resolved.relative_to(root) if resolved.is_relative_to(root) else resolved})")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in anchors_in(resolved):
            errors.append(f"{md_path}: broken anchor '{target}' "
                          f"(no heading '#{anchor}' in {path_part})")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="markdown files to check (default: every *.md under --root)")
    args = parser.parse_args()

    root = args.root.resolve()
    files = args.files or sorted(
        p for p in root.rglob("*.md")
        if not any(part.startswith((".", "build")) for part in p.relative_to(root).parts))

    errors = []
    for md in files:
        errors.extend(check_file(md.resolve(), root))

    print(f"checked {len(files)} markdown files")
    if errors:
        print("\nbroken links:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
