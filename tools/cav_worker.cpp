// cav_worker: the fleet process behind dist/campaign_driver.h and
// dist/solve_driver.h.  Never run by hand — a driver fork+execs it with
// two inherited pipe fds as argv and speaks dist/wire.h over them:
//
//   cav_worker <read_fd> <write_fd>
//
// Everything interesting lives in dist::worker_main; this file only
// parses the fds.
#include <cstdio>
#include <cstdlib>

#include "dist/worker.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "cav_worker is an internal helper spawned by the dist drivers.\n"
                 "usage: cav_worker <read_fd> <write_fd>\n");
    return 2;
  }
  char* end = nullptr;
  const long in_fd = std::strtol(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0' || in_fd < 0) return 2;
  const long out_fd = std::strtol(argv[2], &end, 10);
  if (end == argv[2] || *end != '\0' || out_fd < 0) return 2;
  return cav::dist::worker_main(static_cast<int>(in_fd), static_cast<int>(out_fd));
}
