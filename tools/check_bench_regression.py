#!/usr/bin/env python3
"""Guard the bench-smoke timings against order-of-magnitude regressions.

Compares a merged bench_results.json (tools/merge_bench_json.py) against
the checked-in baselines (bench/baselines.json, same shape).  Smoke-mode
timings on shared CI runners are noisy, so the check is deliberately
generous: a timing fails only when it exceeds threshold x baseline
(default 2.5x), and baselines below the floor (default 0.05 s) are skipped
outright — the guard exists to catch accidental algorithmic regressions
(a solver quietly falling back to a reference path), not scheduler jitter.

Only keys present in the baselines are compared, and only keys that look
like timings (ending in "_s" or named "wall_s"); rate/count metrics ride
along in the artifact for the perf trajectory but are not gated.  A
baselined bench or timing missing from the results is an error: renaming a
metric must be accompanied by a baseline update.

A bench entry may carry a "floors" map overriding the global floor for
named timings — the way to gate sub-50 ms metrics that are stable enough
to guard (e.g. a per-batch p99 latency measured over hundreds of batches):

    "bench_policy_server": {
        "metrics": {"e15.pair.batch_p99_s": 0.004},
        "floors": {"e15.pair.batch_p99_s": 0.0}
    }

Usage:
    check_bench_regression.py --results build/bench_results.json \
        [--baselines bench/baselines.json] [--threshold 2.5] [--min-baseline-s 0.05]
"""
import argparse
import json
import pathlib
import sys


def is_timing(key: str) -> bool:
    return key == "wall_s" or key.endswith("_s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=pathlib.Path, required=True)
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent
                        / "bench" / "baselines.json")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="fail when timing > threshold x baseline")
    parser.add_argument("--min-baseline-s", type=float, default=0.05,
                        help="skip timings whose baseline is below this")
    args = parser.parse_args()

    results = json.loads(args.results.read_text())
    baselines = json.loads(args.baselines.read_text())

    # Smoke-mode timings and full-mode timings differ by orders of
    # magnitude; comparing across modes only produces noise.
    if results.get("smoke") != baselines.get("smoke"):
        print(f"error: results smoke={results.get('smoke')} but baselines "
              f"smoke={baselines.get('smoke')} — run the benches in the "
              f"baselines' mode (bench-smoke sets CAV_BENCH_SMOKE=1) or "
              f"regenerate the baselines", file=sys.stderr)
        return 1

    failures = []
    compared = 0
    skipped = 0
    rows = []
    for bench, base_entry in sorted(baselines.get("benches", {}).items()):
        result_entry = results.get("benches", {}).get(bench)
        if result_entry is None:
            failures.append(f"{bench}: present in baselines but missing from results")
            continue
        base_metrics = dict(base_entry.get("metrics", {}))
        if base_entry.get("wall_s") is not None:
            base_metrics["wall_s"] = base_entry["wall_s"]
        result_metrics = dict(result_entry.get("metrics", {}))
        if result_entry.get("wall_s") is not None:
            result_metrics["wall_s"] = result_entry["wall_s"]

        floors = base_entry.get("floors", {})
        for key, base_value in sorted(base_metrics.items()):
            if not is_timing(key):
                continue
            floor = floors.get(key, args.min_baseline_s)
            if base_value is None or base_value < floor:
                skipped += 1
                continue
            current = result_metrics.get(key)
            if current is None:
                failures.append(f"{bench}.{key}: baselined timing missing from results")
                continue
            compared += 1
            ratio = current / base_value
            status = "FAIL" if ratio > args.threshold else "ok"
            rows.append((bench, key, base_value, current, ratio, status))
            if ratio > args.threshold:
                failures.append(
                    f"{bench}.{key}: {current:.3f}s vs baseline {base_value:.3f}s "
                    f"({ratio:.2f}x > {args.threshold}x)")

    if rows:
        width = max(len(f"{b}.{k}") for b, k, *_ in rows)
        print(f"{'timing'.ljust(width)}  {'baseline':>9}  {'current':>9}  {'ratio':>6}")
        for bench, key, base_value, current, ratio, status in rows:
            print(f"{f'{bench}.{key}'.ljust(width)}  {base_value:>8.3f}s  "
                  f"{current:>8.3f}s  {ratio:>5.2f}x  {status}")
    print(f"\ncompared {compared} timings "
          f"(threshold {args.threshold}x, {skipped} below the {args.min_baseline_s}s floor)")

    if failures:
        print("\nregression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
